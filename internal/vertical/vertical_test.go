package vertical

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tuple"
)

func testSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "hot_a", Kind: tuple.KindInt64},
		tuple.Field{Name: "hot_b", Kind: tuple.KindInt32},
		tuple.Field{Name: "written", Kind: tuple.KindInt64},
		tuple.Field{Name: "cold_blob", Kind: tuple.KindString},
	)
}

func testStats() []FieldStats {
	return []FieldStats{
		{Name: "id", WidthBytes: 8, ReadFreq: 1.0, Cached: true},
		{Name: "hot_a", WidthBytes: 8, ReadFreq: 0.9, Cached: true},
		{Name: "hot_b", WidthBytes: 4, ReadFreq: 0.9, Cached: true},
		{Name: "written", WidthBytes: 8, ReadFreq: 0.05, UpdateFreq: 0.8},
		{Name: "cold_blob", WidthBytes: 300, ReadFreq: 0.02, UpdateFreq: 0},
	}
}

func TestAdviseSplitsCachedAndHotWrite(t *testing.T) {
	split, err := Advise(testSchema(), testStats(), DefaultCostModel())
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(split.Groups) < 2 {
		t.Fatalf("expected a split, got %v (%s)", split.Groups, split.Note)
	}
	if split.Gain() <= 0 {
		t.Errorf("split should win under this workload, gain=%f", split.Gain())
	}
	// Cached fields together, write-hot field separate from the blob.
	groupOf := map[string]int{}
	for gi, g := range split.Groups {
		for _, f := range g {
			groupOf[f] = gi
		}
	}
	if groupOf["hot_a"] != groupOf["hot_b"] {
		t.Error("cached fields not grouped together")
	}
	if groupOf["written"] == groupOf["cold_blob"] {
		t.Error("write-hot field grouped with cold blob")
	}
}

func TestAdviseUnsplitWhenLosing(t *testing.T) {
	schema := tuple.MustSchema(
		tuple.Field{Name: "a", Kind: tuple.KindInt64},
		tuple.Field{Name: "b", Kind: tuple.KindInt64},
	)
	// Everything read every time: splitting only adds seeks.
	stats := []FieldStats{
		{Name: "a", WidthBytes: 8, ReadFreq: 1.0, UpdateFreq: 0.5},
		{Name: "b", WidthBytes: 8, ReadFreq: 1.0},
	}
	split, err := Advise(schema, stats, DefaultCostModel())
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(split.Groups) != 1 {
		t.Errorf("should stay unsplit, got %v (%s)", split.Groups, split.Note)
	}
}

func TestAdviseValidation(t *testing.T) {
	if _, err := Advise(testSchema(), nil, DefaultCostModel()); err == nil {
		t.Error("no stats should fail")
	}
	if _, err := Advise(testSchema(), []FieldStats{{Name: "nope"}}, DefaultCostModel()); err == nil {
		t.Error("unknown field should fail")
	}
}

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func testRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i)),
		tuple.Int64(int64(i * 2)),
		tuple.Int32(int32(i * 3)),
		tuple.Int64(int64(i * 4)),
		tuple.String("blob-blob-blob"),
	}
}

func TestVerticalTableRoundTrip(t *testing.T) {
	e := newEngine(t)
	groups := [][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}}
	vt, err := NewVerticalTable(e, "t", testSchema(), "id", groups)
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	if vt.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d", vt.NumGroups())
	}
	for i := 0; i < 100; i++ {
		if err := vt.Insert(testRow(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	row, touched, err := vt.Get(tuple.Int64(42))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if touched != 3 {
		t.Errorf("full Get touched %d groups, want 3", touched)
	}
	if !row.Equal(testRow(42)) {
		t.Errorf("row mismatch: %v", row)
	}
}

func TestVerticalTableNarrowReadTouchesOneGroup(t *testing.T) {
	e := newEngine(t)
	groups := [][]string{{"hot_a", "hot_b"}, {"written", "cold_blob"}}
	vt, err := NewVerticalTable(e, "t", testSchema(), "id", groups)
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	for i := 0; i < 50; i++ {
		vt.Insert(testRow(i))
	}
	vals, touched, err := vt.GetFields(tuple.Int64(7), []string{"hot_a", "hot_b"})
	if err != nil {
		t.Fatalf("GetFields: %v", err)
	}
	if touched != 1 {
		t.Errorf("narrow read touched %d groups, want 1", touched)
	}
	if vals[0].Int != 14 || vals[1].Int != 21 {
		t.Errorf("values wrong: %v", vals)
	}
	// Projecting the pk itself costs nothing extra.
	vals, touched, err = vt.GetFields(tuple.Int64(7), []string{"id", "hot_a"})
	if err != nil || touched != 1 || vals[0].Int != 7 {
		t.Errorf("pk projection: %v %d %v", vals, touched, err)
	}
}

func TestVerticalTableUpdateTouchesOneGroup(t *testing.T) {
	e := newEngine(t)
	groups := [][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}}
	vt, _ := NewVerticalTable(e, "t", testSchema(), "id", groups)
	for i := 0; i < 20; i++ {
		vt.Insert(testRow(i))
	}
	touched, err := vt.UpdateFields(tuple.Int64(5), []string{"written"}, tuple.Row{tuple.Int64(777)})
	if err != nil {
		t.Fatalf("UpdateFields: %v", err)
	}
	if touched != 1 {
		t.Errorf("update touched %d groups, want 1", touched)
	}
	row, _, err := vt.Get(tuple.Int64(5))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if row[3].Int != 777 {
		t.Errorf("update not applied: %v", row[3])
	}
	// Untouched fields intact.
	if row[1].Int != 10 || row[4].Str != "blob-blob-blob" {
		t.Errorf("other groups corrupted: %v", row)
	}
}

func TestVerticalTableValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := NewVerticalTable(e, "a", testSchema(), "nope", [][]string{{"hot_a"}}); err == nil {
		t.Error("unknown pk should fail")
	}
	if _, err := NewVerticalTable(e, "b", testSchema(), "id", [][]string{{"hot_a"}}); err == nil {
		t.Error("uncovered fields should fail")
	}
	if _, err := NewVerticalTable(e, "c", testSchema(), "id",
		[][]string{{"hot_a", "hot_b", "written", "cold_blob"}, {"hot_a"}}); err == nil {
		t.Error("duplicated field across groups should fail")
	}
}

func TestVerticalQueryStreamsLogicalRows(t *testing.T) {
	e, err := core.NewEngine(core.Options{PageSize: 1024, BufferPoolPages: 1024})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	schema := testSchema()
	vt, err := NewVerticalTable(e, "v", schema, "id",
		[][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}})
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		err := vt.Insert(tuple.Row{
			tuple.Int64(int64(i)),
			tuple.Int64(int64(i * 2)),
			tuple.Int32(int32(i % 7)),
			tuple.Int64(int64(i * 5)),
			tuple.String("blob"),
		})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Full logical rows in pk order.
	cur, err := vt.Query(nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	want := int64(0)
	for cur.Next() {
		row := cur.Row()
		if row[0].Int != want || row[1].Int != want*2 || row[3].Int != want*5 {
			t.Fatalf("row %d wrong: %v", want, row)
		}
		want++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if want != n {
		t.Fatalf("scanned %d rows, want %d", want, n)
	}
	if cur.GroupReads() != n*vt.NumGroups() {
		t.Errorf("full scan touched %d groups, want %d", cur.GroupReads(), n*vt.NumGroups())
	}
	// Projected scan touches only the groups holding the fields.
	cur, err = vt.Query([]string{"id", "hot_a"}, core.WithLimit(10))
	if err != nil {
		t.Fatalf("projected Query: %v", err)
	}
	defer cur.Close()
	served := 0
	for cur.Next() {
		row := cur.Row()
		if len(row) != 2 || row[1].Int != row[0].Int*2 {
			t.Fatalf("projected row wrong: %v", row)
		}
		served++
	}
	if served != 10 {
		t.Fatalf("limit served %d", served)
	}
	if cur.GroupReads() != 10 {
		t.Errorf("projected scan touched %d groups, want 10 (one per row)", cur.GroupReads())
	}
	if _, err := vt.Query([]string{"nope"}); err == nil {
		t.Fatal("unknown field must error")
	}
}

func TestVerticalQueryIgnoresStrayProjection(t *testing.T) {
	e, err := core.NewEngine(core.Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	vt, err := NewVerticalTable(e, "v", testSchema(), "id",
		[][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}})
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := vt.Insert(tuple.Row{
			tuple.Int64(int64(i)), tuple.Int64(int64(i * 2)),
			tuple.Int32(0), tuple.Int64(0), tuple.String("b"),
		}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// A caller projection must not redirect the pk-driving scan into
	// reading hot_a values as primary keys.
	cur, err := vt.Query([]string{"id", "hot_a"}, core.WithProjection("hot_a"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	want := int64(0)
	for cur.Next() {
		row := cur.Row()
		if row[0].Int != want || row[1].Int != want*2 {
			t.Fatalf("stray projection corrupted scan: %v (want pk %d)", row, want)
		}
		want++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if want != 20 {
		t.Fatalf("served %d rows, want 20", want)
	}
}

func TestVerticalAggregateRoutesGroups(t *testing.T) {
	e := newEngine(t)
	groups := [][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}}
	vt, err := NewVerticalTable(e, "agg", testSchema(), "id", groups)
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	const rows = 300
	for i := 0; i < rows; i++ {
		if err := vt.Insert(testRow(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	// pk-only aggregates touch exactly one group.
	res, touched, err := vt.Aggregate([]core.AggSpec{
		{Op: core.AggCount},
		{Op: core.AggMin, Field: "id"},
		{Op: core.AggMax, Field: "id"},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if touched != 1 {
		t.Errorf("pk-only aggregate touched %d groups, want 1", touched)
	}
	if res.Rows != rows || res.Values[0].Int != rows || res.Values[1].Int != 0 || res.Values[2].Int != rows-1 {
		t.Errorf("pk aggregate wrong: %+v", res)
	}
	if !res.Pushdown {
		t.Error("key-only aggregate should push down")
	}
	// Specs spanning groups touch only the owning groups, results in
	// spec order.
	res, touched, err = vt.Aggregate([]core.AggSpec{
		{Op: core.AggSum, Field: "written"},
		{Op: core.AggMax, Field: "hot_b"},
		{Op: core.AggCount},
	}, core.WithParallel(2))
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if touched != 2 {
		t.Errorf("two-group aggregate touched %d groups", touched)
	}
	var wantSum int64
	for i := 0; i < rows; i++ {
		wantSum += int64(i * 4)
	}
	if res.Values[0].Int != wantSum || int64(res.Values[1].Int) != int64((rows-1)*3) || res.Values[2].Int != rows {
		t.Errorf("cross-group aggregate wrong: %+v", res.Values)
	}
	// pk filters apply to every touched group.
	res, _, err = vt.Aggregate([]core.AggSpec{{Op: core.AggCount}, {Op: core.AggSum, Field: "hot_a"}},
		core.WithFilter(core.Filter{Field: "id", Op: core.CmpLt, Value: tuple.Int64(10)}))
	if err != nil {
		t.Fatalf("filtered Aggregate: %v", err)
	}
	if res.Rows != 10 || res.Values[0].Int != 10 || res.Values[1].Int != 90 {
		t.Errorf("filtered aggregate wrong: rows=%d vals=%+v", res.Rows, res.Values)
	}
	// A filter on a field the touched groups don't hold must error.
	if _, _, err := vt.Aggregate([]core.AggSpec{{Op: core.AggSum, Field: "written"}},
		core.WithFilter(core.Filter{Field: "hot_a", Op: core.CmpGt, Value: tuple.Int64(0)})); err == nil {
		t.Error("cross-group filter must error")
	}
	if _, _, err := vt.Aggregate(nil); err == nil {
		t.Error("empty specs must error")
	}
	if _, _, err := vt.Aggregate([]core.AggSpec{{Op: core.AggSum, Field: "nope"}}); err == nil {
		t.Error("unknown field must error")
	}
}
