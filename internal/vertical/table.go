package vertical

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tuple"
)

// VerticalTable stores a logical table as several physical group
// tables, each holding the primary key plus one column group. Reads
// that need a single group touch one heap; full-row reads pay the merge
// cost the advisor models.
type VerticalTable struct {
	schema  *tuple.Schema
	pkField string
	groups  []groupTable
}

type groupTable struct {
	fields []string // without the pk
	table  *core.Table
	index  *core.Index // unique index on the pk
	// positions of the group's fields in the logical schema
	logicalPos []int
}

// NewVerticalTable materializes a split on an engine. The primary key
// field is added to every group. Table names are "<name>_g<i>". opts
// apply to every group table — WithHeapInsertShards in particular
// configures each group heap's parallel-ingest lanes, since the groups
// are ordinary (non-append-only) tables.
func NewVerticalTable(e *core.Engine, name string, schema *tuple.Schema, pkField string, groups [][]string, opts ...core.TableOption) (*VerticalTable, error) {
	if schema.Index(pkField) < 0 {
		return nil, fmt.Errorf("vertical: pk field %q not in schema", pkField)
	}
	vt := &VerticalTable{schema: schema, pkField: pkField}
	seen := map[string]bool{pkField: true}
	for gi, g := range groups {
		fields := make([]tuple.Field, 0, len(g)+1)
		fields = append(fields, schema.Field(schema.Index(pkField)))
		var logicalPos []int
		var names []string
		for _, fname := range g {
			if fname == pkField {
				continue
			}
			pos := schema.Index(fname)
			if pos < 0 {
				return nil, fmt.Errorf("vertical: field %q not in schema", fname)
			}
			if seen[fname] {
				return nil, fmt.Errorf("vertical: field %q in more than one group", fname)
			}
			seen[fname] = true
			fields = append(fields, schema.Field(pos))
			logicalPos = append(logicalPos, pos)
			names = append(names, fname)
		}
		gschema, err := tuple.NewSchema(fields...)
		if err != nil {
			return nil, err
		}
		tb, err := e.CreateTable(fmt.Sprintf("%s_g%d", name, gi), gschema, opts...)
		if err != nil {
			return nil, err
		}
		ix, err := tb.CreateIndex("pk", []string{pkField})
		if err != nil {
			return nil, err
		}
		vt.groups = append(vt.groups, groupTable{
			fields:     names,
			table:      tb,
			index:      ix,
			logicalPos: logicalPos,
		})
	}
	for i := 0; i < schema.NumFields(); i++ {
		if !seen[schema.Field(i).Name] {
			return nil, fmt.Errorf("vertical: field %q not covered by any group", schema.Field(i).Name)
		}
	}
	return vt, nil
}

// NumGroups returns the number of physical groups.
func (vt *VerticalTable) NumGroups() int { return len(vt.groups) }

// Insert stores a logical row across all groups. Each group's insert
// is individually thread-safe (sharded heap placement + index latch
// crabbing, so parallel ingesters contend per heap shard and per leaf),
// but the logical row lands group by group: a concurrent reader can
// observe a pk whose later groups have not been written yet. Callers
// needing cross-group atomicity must serialize above this layer.
// Insert is a one-row InsertBatch; bulk ingest should batch.
func (vt *VerticalTable) Insert(row tuple.Row) error {
	_, err := vt.InsertBatch([]tuple.Row{row})
	return err
}

// InsertBatch stores a batch of logical rows: one core.Batch fans out
// per group, so each group's heap sees one shard-affine insert run and
// each group's pk index one leaf-grouped sorted run, instead of
// len(rows) one-row pipelines per group. The cross-group visibility
// caveat of Insert applies batch-wide — groups land in order, so a
// concurrent reader can observe pks whose later groups are missing;
// on error, earlier groups hold more of the batch than later ones
// (the returned group count says how many groups fully applied).
func (vt *VerticalTable) InsertBatch(rows []tuple.Row, opts ...core.ApplyOption) (int, error) {
	for i, row := range rows {
		if len(row) != vt.schema.NumFields() {
			return 0, fmt.Errorf("vertical: row %d has %d values, schema %d", i, len(row), vt.schema.NumFields())
		}
	}
	pkPos := vt.schema.Index(vt.pkField)
	applied := 0
	var b core.Batch
	for _, g := range vt.groups {
		b.Reset()
		for _, row := range rows {
			grow := make(tuple.Row, 0, len(g.logicalPos)+1)
			grow = append(grow, row[pkPos])
			for _, pos := range g.logicalPos {
				grow = append(grow, row[pos])
			}
			b.Insert(grow)
		}
		if _, err := g.table.Apply(&b, opts...); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// Get reconstructs the full logical row for a primary key, touching
// every group (maximum merge cost). The second return reports how many
// group tables were accessed.
func (vt *VerticalTable) Get(pk tuple.Value) (tuple.Row, int, error) {
	row := make(tuple.Row, vt.schema.NumFields())
	row[vt.schema.Index(vt.pkField)] = pk
	touched := 0
	for _, g := range vt.groups {
		grow, res, err := g.index.Lookup(nil, pk)
		if err != nil {
			return nil, touched, err
		}
		if !res.Found {
			return nil, touched, fmt.Errorf("vertical: pk %v missing from group", pk)
		}
		touched++
		for i, pos := range g.logicalPos {
			row[pos] = grow[i+1] // grow[0] is the pk
		}
	}
	return row, touched, nil
}

// GetFields fetches only the named fields, touching only the groups
// that hold them — the read-amplification win the advisor models.
func (vt *VerticalTable) GetFields(pk tuple.Value, names []string) (tuple.Row, int, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(tuple.Row, len(names))
	touched := 0
	for _, g := range vt.groups {
		needed := false
		for _, f := range g.fields {
			if want[f] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		grow, res, err := g.index.Lookup(nil, pk)
		if err != nil {
			return nil, touched, err
		}
		if !res.Found {
			return nil, touched, fmt.Errorf("vertical: pk %v missing from group", pk)
		}
		touched++
		for i, f := range g.fields {
			for oi, n := range names {
				if n == f {
					out[oi] = grow[i+1]
				}
			}
		}
	}
	for oi, n := range names {
		if n == vt.pkField {
			out[oi] = pk
		}
	}
	return out, touched, nil
}

// Cursor streams logical rows in primary-key order by driving the
// first group's pk index with a core cursor — the pk projection is
// covered by the index key, so the driving scan never touches a heap —
// and merging the other needed groups per row. GroupReads accumulates
// the merge cost the advisor's cost model prices.
type Cursor struct {
	vt         *VerticalTable
	pks        *core.Cursor
	names      []string // nil = full logical row
	row        tuple.Row
	groupReads int
	err        error
}

// Query opens a pk-ordered cursor over the logical table. names
// restricts the output to those fields (nil = all), touching only the
// groups that hold them; opts (key bounds, limit, reverse) apply to
// the driving pk scan. The projection and index of the driving scan
// are fixed — names is the projection mechanism here, so a caller
// WithProjection or WithIndex in opts is overridden, never honored.
func (vt *VerticalTable) Query(names []string, opts ...core.QueryOption) (*Cursor, error) {
	for _, n := range names {
		if n != vt.pkField && vt.schema.Index(n) < 0 {
			return nil, fmt.Errorf("vertical: no field %q in schema", n)
		}
	}
	// Forced options go last: later options win, so a stray projection
	// or index in opts cannot redirect the pk-driving scan (values of a
	// non-pk column being misread as primary keys).
	opts = append(opts[:len(opts):len(opts)],
		core.WithIndex("pk"),
		core.WithProjection(vt.pkField),
	)
	pks, err := vt.groups[0].table.Query(opts...)
	if err != nil {
		return nil, err
	}
	return &Cursor{vt: vt, pks: pks, names: names}, nil
}

// Next advances to the next logical row.
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	if !c.pks.Next() {
		c.err = c.pks.Err()
		return false
	}
	pk := c.pks.Row()[0]
	var (
		row     tuple.Row
		touched int
		err     error
	)
	if c.names == nil {
		row, touched, err = c.vt.Get(pk)
	} else {
		row, touched, err = c.vt.GetFields(pk, c.names)
	}
	if err != nil {
		c.err = err
		return false
	}
	c.row = row
	c.groupReads += touched
	return true
}

// Row returns the current logical (or projected) row.
func (c *Cursor) Row() tuple.Row { return c.row }

// GroupReads returns the cumulative number of group-table accesses the
// scan has paid — the merge cost of the vertical split.
func (c *Cursor) GroupReads() int { return c.groupReads }

// Err returns the first error the cursor hit.
func (c *Cursor) Err() error { return c.err }

// Close releases the driving pk cursor. Idempotent.
func (c *Cursor) Close() error {
	if cerr := c.pks.Close(); c.err == nil {
		c.err = cerr
	}
	return c.err
}

// Aggregate computes simple aggregates over the logical table, routing
// each spec to the physical group holding its field and running one
// core aggregate per touched group over that group's pk index —
// count(*) and primary-key aggregates are answered by the first group
// without touching any other heap. opts (key bounds, WithParallel,
// WithFilter, cache policy) apply to every touched group's scan;
// because each group stores only the pk plus its own fields, filters
// may reference the primary key, or non-pk fields only when every
// touched group holds them (in practice: single-group aggregates).
// Results come back in spec order. The int reports how many group
// tables were touched — the merge cost the advisor models.
//
// The same visibility caveat as Insert applies: rows land group by
// group, so aggregates racing an insert can observe a pk in one group
// and not yet in another; per-group row counts may differ transiently.
func (vt *VerticalTable) Aggregate(specs []core.AggSpec, opts ...core.QueryOption) (core.AggResult, int, error) {
	if len(specs) == 0 {
		return core.AggResult{}, 0, fmt.Errorf("vertical: Aggregate needs at least one AggSpec")
	}
	// Route each spec to its owning group. count(*) and pk specs go to
	// group 0 (every group holds the pk; the first is as good as any).
	perGroup := make([][]core.AggSpec, len(vt.groups))
	srcIdx := make([][]int, len(vt.groups)) // spec index, to reorder results
	for i, sp := range specs {
		gi := 0
		if sp.Field != "" && sp.Field != vt.pkField {
			pos := vt.schema.Index(sp.Field)
			if pos < 0 {
				return core.AggResult{}, 0, fmt.Errorf("vertical: no field %q in schema", sp.Field)
			}
			gi = -1
			for g := range vt.groups {
				for _, p := range vt.groups[g].logicalPos {
					if p == pos {
						gi = g
						break
					}
				}
			}
			if gi < 0 {
				return core.AggResult{}, 0, fmt.Errorf("vertical: field %q not covered by any group", sp.Field)
			}
		}
		perGroup[gi] = append(perGroup[gi], sp)
		srcIdx[gi] = append(srcIdx[gi], i)
	}
	// Force the pk index; a stray WithIndex in opts must not redirect a
	// group scan to an index that doesn't exist there.
	opts = append(opts[:len(opts):len(opts)], core.WithIndex("pk"))
	out := core.AggResult{Values: make([]tuple.Value, len(specs))}
	touched := 0
	for gi := range vt.groups {
		if len(perGroup[gi]) == 0 {
			continue
		}
		res, err := vt.groups[gi].table.Aggregate(perGroup[gi], opts...)
		if err != nil {
			return core.AggResult{}, touched, fmt.Errorf("vertical: group %d: %w", gi, err)
		}
		for j, si := range srcIdx[gi] {
			out.Values[si] = res.Values[j]
		}
		if touched == 0 {
			out.Rows = res.Rows
			out.Pushdown = res.Pushdown
			out.Segments = res.Segments
		} else {
			out.Pushdown = out.Pushdown && res.Pushdown
			if res.Segments > out.Segments {
				out.Segments = res.Segments
			}
		}
		out.Stats.Add(res.Stats)
		touched++
	}
	return out, touched, nil
}

// UpdateFields modifies the named fields of the row with the given pk,
// touching only the groups holding them — the write-density win of the
// update-rate split.
func (vt *VerticalTable) UpdateFields(pk tuple.Value, names []string, vals tuple.Row) (int, error) {
	if len(names) != len(vals) {
		return 0, fmt.Errorf("vertical: %d names, %d values", len(names), len(vals))
	}
	newVal := make(map[string]tuple.Value, len(names))
	for i, n := range names {
		newVal[n] = vals[i]
	}
	touched := 0
	for _, g := range vt.groups {
		needed := false
		for _, f := range g.fields {
			if _, ok := newVal[f]; ok {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		rid, found, err := g.index.LookupRID(pk)
		if err != nil {
			return touched, err
		}
		if !found {
			return touched, fmt.Errorf("vertical: pk %v missing from group", pk)
		}
		grow, err := g.table.Get(rid)
		if err != nil {
			return touched, err
		}
		for i, f := range g.fields {
			if v, ok := newVal[f]; ok {
				grow[i+1] = v
			}
		}
		if _, err := g.table.Update(rid, grow); err != nil {
			return touched, err
		}
		touched++
	}
	return touched, nil
}
