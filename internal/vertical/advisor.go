// Package vertical implements the Section 3.2 sketch: vertical
// partitioning that separates cached from uncached fields (so queries
// missing the index cache read less redundant data) and splits columns
// by update rate (increasing write density per page). It provides a
// cost-model-driven advisor and a physical VerticalTable that stores
// each column group in its own heap with a shared primary key.
package vertical

import (
	"fmt"
	"sort"

	"repro/internal/tuple"
)

// FieldStats describes one column's workload profile, the advisor's
// input. Frequencies are per-query probabilities in [0, 1].
type FieldStats struct {
	Name string
	// WidthBytes is the column's average physical width.
	WidthBytes int
	// ReadFreq is the fraction of point queries that project the field.
	ReadFreq float64
	// UpdateFreq is the fraction of write operations that modify it.
	UpdateFreq float64
	// Cached marks fields served by the index cache (Section 2.1), which
	// queries read without touching the heap at all.
	Cached bool
}

// Split is a proposed vertical partitioning: each group becomes its own
// physical table keyed by the primary key.
type Split struct {
	Groups [][]string
	// ReadCost and WriteCost are model costs per 1000 operations
	// (arbitrary units: bytes touched + per-group seek overhead).
	ReadCost, WriteCost float64
	// BaselineReadCost / BaselineWriteCost are the unsplit costs.
	BaselineReadCost, BaselineWriteCost float64
	Note                                string
}

// Gain returns the relative cost reduction of the split, averaged over
// reads and writes (positive = split wins).
func (s Split) Gain() float64 {
	base := s.BaselineReadCost + s.BaselineWriteCost
	if base == 0 {
		return 0
	}
	return (base - s.ReadCost - s.WriteCost) / base
}

// CostModel weights the two competing effects the paper calls out:
// reading fewer bytes per group vs paying a per-group access (merge)
// cost when a query spans groups.
type CostModel struct {
	// SeekCost is the fixed cost of touching one group's page per
	// operation (the "cost of merging the partitions together").
	SeekCost float64
	// ByteCost is the cost per byte read or written.
	ByteCost float64
}

// DefaultCostModel uses a seek:byte ratio typical of page-based stores:
// touching an extra page costs as much as ~200 bytes of transfer.
func DefaultCostModel() CostModel {
	return CostModel{SeekCost: 200, ByteCost: 1}
}

// Advise proposes a split of the fields (excluding the primary key,
// which every group carries implicitly). The heuristic follows the
// paper's two motifs:
//
//  1. cache-complement: fields served by the index cache go together,
//     so heap reads triggered by cache misses fetch only what the cache
//     doesn't already cover;
//  2. update-rate: frequently updated fields are segregated from
//     read-mostly ones, raising write density per page.
//
// The returned split is compared against the unsplit baseline under the
// cost model; when splitting loses, the baseline single group returns.
func Advise(schema *tuple.Schema, stats []FieldStats, m CostModel) (Split, error) {
	if len(stats) == 0 {
		return Split{}, fmt.Errorf("vertical: no field stats")
	}
	byName := make(map[string]FieldStats, len(stats))
	for _, s := range stats {
		if schema.Index(s.Name) < 0 {
			return Split{}, fmt.Errorf("vertical: field %q not in schema", s.Name)
		}
		byName[s.Name] = s
	}
	// Partition into three candidate groups.
	var cached, hotWrite, rest []string
	for _, s := range stats {
		switch {
		case s.Cached:
			cached = append(cached, s.Name)
		case s.UpdateFreq > 2*s.ReadFreq && s.UpdateFreq > 0.05:
			hotWrite = append(hotWrite, s.Name)
		default:
			rest = append(rest, s.Name)
		}
	}
	var groups [][]string
	for _, g := range [][]string{cached, hotWrite, rest} {
		if len(g) > 0 {
			sort.Strings(g)
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return Split{}, fmt.Errorf("vertical: empty grouping")
	}
	all := make([]string, 0, len(stats))
	for _, s := range stats {
		all = append(all, s.Name)
	}
	baselineRead, baselineWrite := cost(m, [][]string{all}, byName)
	readCost, writeCost := cost(m, groups, byName)
	split := Split{
		Groups:            groups,
		ReadCost:          readCost,
		WriteCost:         writeCost,
		BaselineReadCost:  baselineRead,
		BaselineWriteCost: baselineWrite,
	}
	if split.Gain() <= 0 {
		return Split{
			Groups:            [][]string{all},
			ReadCost:          baselineRead,
			WriteCost:         baselineWrite,
			BaselineReadCost:  baselineRead,
			BaselineWriteCost: baselineWrite,
			Note:              "splitting loses under the cost model; staying unsplit",
		}, nil
	}
	split.Note = fmt.Sprintf("split into %d groups (cache-complement + update-rate)", len(groups))
	return split, nil
}

// cost evaluates expected read and write cost per 1000 operations for a
// grouping: each operation touches a group iff it needs at least one of
// the group's fields (probability approximated by the max field
// frequency; fields in a group are co-accessed by construction), paying
// the seek cost plus the bytes of the whole group.
func cost(m CostModel, groups [][]string, byName map[string]FieldStats) (read, write float64) {
	for _, g := range groups {
		var groupBytes int
		var maxRead, maxWrite float64
		for _, name := range g {
			s := byName[name]
			groupBytes += s.WidthBytes
			if s.ReadFreq > maxRead {
				maxRead = s.ReadFreq
			}
			if s.UpdateFreq > maxWrite {
				maxWrite = s.UpdateFreq
			}
		}
		// Cached fields are answered from the index on most reads; only
		// cache misses (assumed 20%) reach the heap group.
		cacheDamp := 1.0
		if allCached(g, byName) {
			cacheDamp = 0.2
		}
		read += 1000 * maxRead * cacheDamp * (m.SeekCost + m.ByteCost*float64(groupBytes))
		write += 1000 * maxWrite * (m.SeekCost + m.ByteCost*float64(groupBytes))
	}
	return read, write
}

func allCached(g []string, byName map[string]FieldStats) bool {
	for _, name := range g {
		if !byName[name].Cached {
			return false
		}
	}
	return len(g) > 0
}
