package vertical

import (
	"testing"

	"repro/internal/tuple"
)

func TestVerticalInsertBatchFansOutPerGroup(t *testing.T) {
	e := newEngine(t)
	groups := [][]string{{"hot_a", "hot_b"}, {"written"}, {"cold_blob"}}
	vt, err := NewVerticalTable(e, "t", testSchema(), "id", groups)
	if err != nil {
		t.Fatalf("NewVerticalTable: %v", err)
	}
	rows := make([]tuple.Row, 200)
	for i := range rows {
		rows[i] = testRow(i)
	}
	applied, err := vt.InsertBatch(rows)
	if err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	if applied != 3 {
		t.Fatalf("applied %d groups, want 3", applied)
	}
	// Every logical row reconstructs from all groups.
	for i := 0; i < 200; i += 17 {
		row, touched, err := vt.Get(tuple.Int64(int64(i)))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if touched != 3 {
			t.Fatalf("Get %d touched %d groups", i, touched)
		}
		if !row.Equal(testRow(i)) {
			t.Fatalf("row %d mismatch: %v", i, row)
		}
	}
	// The pk-ordered cursor sees the whole batch.
	cur, err := vt.Query([]string{"id", "written"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	n := 0
	for cur.Next() {
		if cur.Row()[1].Int != cur.Row()[0].Int*4 {
			t.Fatalf("row %d: written = %d", cur.Row()[0].Int, cur.Row()[1].Int)
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	if n != 200 {
		t.Errorf("cursor saw %d rows, want 200", n)
	}

	// A malformed row fails before any group is touched.
	if _, err := vt.InsertBatch([]tuple.Row{{tuple.Int64(999)}}); err == nil {
		t.Error("short row accepted")
	}
	if _, _, err := vt.Get(tuple.Int64(999)); err == nil {
		t.Error("rejected batch left a partial pk behind")
	}
}
