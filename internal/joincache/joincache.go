// Package joincache implements the Section 2.2 extension sketched in
// the paper: "data pages can cache the results of foreign key joins, to
// avoid additional disk accesses for join queries."
//
// The free space of a *heap* page (between its slot directory and
// record data) is recycled as a cache of referenced-table rows, keyed
// by the foreign-key value. A query that fetched a fact row's page
// anyway can then resolve the join without touching the dimension
// table's index or heap.
//
// The slot machinery mirrors the index cache: entries live at absolute
// offsets aligned to the entry size, so they survive the region
// shrinking as records are inserted; writes are volatile (never dirty
// the page); validity hangs on a cache sequence number stored in the
// slotted page's reserved header word (CSNp = CSNjc). Invalidation is
// coarse — any update to the referenced table bumps the global CSN —
// because the paper sketches this direction without a finer protocol;
// DESIGN.md records the simplification.
package joincache

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// keyBytes is the slot header: the FK value identifying the entry
// (stored +1 so that zero marks an empty slot; FK value ^uint64(0) is
// therefore not cacheable and simply misses).
const keyBytes = 8

// Stats counts join-cache activity.
type Stats struct {
	Lookups           int64
	Hits              int64
	Misses            int64
	Inserts           int64
	Evictions         int64
	PageInvalidations int64
	FullInvalidations int64
	SkippedNoLatch    int64
}

// HitRate returns Hits/Lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache manages join-result caching across the heap pages of one fact
// table, for one (referenced table, payload projection) pair.
type Cache struct {
	payloadSize int
	entrySize   int

	csn atomic.Uint32

	mu  sync.Mutex
	rng *rand.Rand

	lookups, hits, misses atomic.Int64
	inserts, evictions    atomic.Int64
	pageInval, fullInval  atomic.Int64
	skipped               atomic.Int64
}

// New creates a join cache whose entries carry payloadSize bytes of
// joined fields.
func New(payloadSize int, seed int64) (*Cache, error) {
	if payloadSize <= 0 {
		return nil, fmt.Errorf("joincache: payload size must be positive, got %d", payloadSize)
	}
	c := &Cache{
		payloadSize: payloadSize,
		entrySize:   keyBytes + payloadSize,
		rng:         rand.New(rand.NewSource(seed)),
	}
	c.csn.Store(1) // fresh pages (reserved word 0) start invalid
	return c, nil
}

// EntrySize returns the slot width.
func (c *Cache) EntrySize() int { return c.entrySize }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:           c.lookups.Load(),
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Inserts:           c.inserts.Load(),
		Evictions:         c.evictions.Load(),
		PageInvalidations: c.pageInval.Load(),
		FullInvalidations: c.fullInval.Load(),
		SkippedNoLatch:    c.skipped.Load(),
	}
}

// InvalidateAll drops every page's join cache at once: called whenever
// the referenced table is updated.
func (c *Cache) InvalidateAll() {
	c.csn.Add(1)
	c.fullInval.Add(1)
}

// Prepare validates the page's cache region against the global CSN,
// zeroing it when stale. Requires the exclusive latch for repairs;
// returns false when the cache is unusable for this visit.
func (c *Cache) Prepare(sp *storage.SlottedPage, exclusive bool) bool {
	csn := c.csn.Load()
	if sp.Reserved() == csn {
		return true
	}
	if !exclusive {
		c.skipped.Add(1)
		return false
	}
	lo, hi := c.region(sp)
	data := sp.Data()
	for i := lo; i < hi; i++ {
		data[i] = 0
	}
	sp.SetReserved(csn)
	c.pageInval.Add(1)
	return true
}

// region returns the page's free-space bounds. The slotted page's
// FreeSpace boundaries move with inserts exactly like the index page's.
func (c *Cache) region(sp *storage.SlottedPage) (lo, hi int) {
	return sp.FreeBounds()
}

// Lookup scans the page's slots for the FK key.
func (c *Cache) Lookup(sp *storage.SlottedPage, fk uint64) ([]byte, bool) {
	c.lookups.Add(1)
	stored := fk + 1
	if stored == 0 {
		c.misses.Add(1)
		return nil, false
	}
	lo, hi := c.region(sp)
	e := c.entrySize
	data := sp.Data()
	first := (lo + e - 1) / e * e
	for off := first; off+e <= hi; off += e {
		if binary.LittleEndian.Uint64(data[off:]) != stored {
			continue
		}
		payload := append([]byte(nil), data[off+keyBytes:off+e]...)
		c.hits.Add(1)
		return payload, true
	}
	c.misses.Add(1)
	return nil, false
}

// Insert stores (fk, payload) into a random free slot, evicting a
// random occupied slot when full. Exclusive latch required.
func (c *Cache) Insert(sp *storage.SlottedPage, exclusive bool, fk uint64, payload []byte) bool {
	if !exclusive {
		c.skipped.Add(1)
		return false
	}
	if len(payload) != c.payloadSize {
		return false
	}
	stored := fk + 1
	if stored == 0 {
		return false
	}
	lo, hi := c.region(sp)
	e := c.entrySize
	data := sp.Data()
	first := (lo + e - 1) / e * e
	if first+e > hi {
		return false
	}
	freeOff, freeSeen := -1, 0
	slotCount := 0
	c.mu.Lock()
	for off := first; off+e <= hi; off += e {
		slotCount++
		v := binary.LittleEndian.Uint64(data[off:])
		if v == stored {
			c.mu.Unlock()
			copy(data[off+keyBytes:], payload)
			c.inserts.Add(1)
			return true
		}
		if v == 0 {
			freeSeen++
			if c.rng.Intn(freeSeen) == 0 {
				freeOff = off
			}
		}
	}
	off := freeOff
	if off < 0 {
		off = first + c.rng.Intn(slotCount)*e
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	binary.LittleEndian.PutUint64(data[off:], stored)
	copy(data[off+keyBytes:], payload)
	c.inserts.Add(1)
	return true
}

// SlotsIn returns the page's current join-cache capacity.
func (c *Cache) SlotsIn(sp *storage.SlottedPage) int {
	lo, hi := c.region(sp)
	e := c.entrySize
	first := (lo + e - 1) / e * e
	if first+e > hi {
		return 0
	}
	return (hi - first) / e
}
