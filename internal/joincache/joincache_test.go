package joincache

import (
	"bytes"
	"testing"

	"repro/internal/buffer"
	"repro/internal/heap"
	"repro/internal/storage"
)

func newTestHeap(t *testing.T) *heap.File {
	t.Helper()
	disk, err := storage.NewMemDisk(1024)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := buffer.NewPool(disk, 64)
	if err != nil {
		t.Fatal(err)
	}
	f, err := heap.NewFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pay(c *Cache, b byte) []byte {
	p := make([]byte, c.EntrySize()-8)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestJoinCacheInsertLookup(t *testing.T) {
	f := newTestHeap(t)
	c, err := New(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Insert([]byte("fact-row"))
	if err != nil {
		t.Fatal(err)
	}
	err = f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		if !excl {
			t.Fatal("uncontended visit should be exclusive")
		}
		if !c.Prepare(sp, excl) {
			t.Fatal("Prepare failed")
		}
		if !c.Insert(sp, excl, 42, pay(c, 0xAB)) {
			t.Fatal("Insert failed")
		}
		got, ok := c.Lookup(sp, 42)
		if !ok || !bytes.Equal(got, pay(c, 0xAB)) {
			t.Fatalf("Lookup: %v %v", got, ok)
		}
		if _, ok := c.Lookup(sp, 99); ok {
			t.Error("lookup of uncached fk hit")
		}
	})
	if err != nil {
		t.Fatalf("VisitPage: %v", err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestJoinCacheInvalidateAll(t *testing.T) {
	f := newTestHeap(t)
	c, _ := New(8, 2)
	rid, _ := f.Insert([]byte("row"))
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		c.Prepare(sp, excl)
		c.Insert(sp, excl, 7, pay(c, 1))
	})
	c.InvalidateAll() // referenced table changed
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		if !c.Prepare(sp, excl) {
			t.Fatal("Prepare failed")
		}
		if _, ok := c.Lookup(sp, 7); ok {
			t.Error("entry survived invalidation")
		}
	})
}

func TestJoinCacheSurvivesRecordInserts(t *testing.T) {
	f := newTestHeap(t)
	c, _ := New(8, 3)
	rid, _ := f.Insert([]byte("first"))
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		c.Prepare(sp, excl)
		for k := uint64(1); k <= 5; k++ {
			c.Insert(sp, excl, k, pay(c, byte(k)))
		}
	})
	// Insert more records into the same page: the free region shrinks
	// and may overwrite peripheral entries; surviving entries must be
	// intact, and the records themselves must never corrupt.
	var rids []storage.RID
	for i := 0; i < 8; i++ {
		r, err := f.Insert(bytes.Repeat([]byte{byte('a' + i)}, 60))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	for i, r := range rids {
		got, err := f.Get(r)
		if err != nil || got[0] != byte('a'+i) {
			t.Fatalf("record %d corrupted: %v %v", i, got, err)
		}
	}
	survived := 0
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		if !c.Prepare(sp, excl) {
			return
		}
		for k := uint64(1); k <= 5; k++ {
			if got, ok := c.Lookup(sp, k); ok {
				if !bytes.Equal(got, pay(c, byte(k))) {
					t.Fatalf("entry %d corrupted", k)
				}
				survived++
			}
		}
	})
	t.Logf("%d/5 entries survived record inserts", survived)
}

func TestJoinCacheCompactionZeroesRegion(t *testing.T) {
	f := newTestHeap(t)
	c, _ := New(8, 4)
	// Fill a page with records, then delete most and force compaction;
	// the grown free region must not present stale record bytes as
	// cache entries.
	var rids []storage.RID
	for i := 0; i < 10; i++ {
		r, err := f.Insert(bytes.Repeat([]byte{0xEE}, 70))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	page := rids[0].Page
	f.VisitPage(page, func(sp *storage.SlottedPage, excl bool) {
		c.Prepare(sp, excl) // stamps CSN: cache now "valid" on this page
	})
	for _, r := range rids[1:] {
		if r.Page == page {
			if err := f.Delete(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Force compaction with an insert that needs the reclaimed space.
	if _, err := f.Insert(bytes.Repeat([]byte{0x11}, 200)); err != nil {
		t.Fatal(err)
	}
	f.VisitPage(page, func(sp *storage.SlottedPage, excl bool) {
		if !c.Prepare(sp, excl) {
			t.Fatal("Prepare failed")
		}
		// 0xEEEEEEEE... interpreted as a key would be (0xEE...EE − 1);
		// scan a few candidate keys derived from the stale byte pattern.
		for _, fk := range []uint64{0xEEEEEEEEEEEEEEEE - 1, 0xEEEEEEEEEEEEEEEE} {
			if _, ok := c.Lookup(sp, fk); ok {
				t.Fatal("stale record bytes served as a cache entry")
			}
		}
	})
}

func TestJoinCacheEvictionWhenFull(t *testing.T) {
	f := newTestHeap(t)
	c, _ := New(24, 5)
	rid, _ := f.Insert([]byte("x"))
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		c.Prepare(sp, excl)
		slots := c.SlotsIn(sp)
		if slots < 2 {
			t.Skipf("only %d slots", slots)
		}
		for k := uint64(1); k <= uint64(slots+5); k++ {
			if !c.Insert(sp, excl, k, pay(c, byte(k))) {
				t.Fatalf("insert %d failed", k)
			}
		}
	})
	if c.Stats().Evictions != 5 {
		t.Errorf("evictions = %d, want 5", c.Stats().Evictions)
	}
}

func TestJoinCacheValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero payload should fail")
	}
	f := newTestHeap(t)
	c, _ := New(8, 6)
	rid, _ := f.Insert([]byte("x"))
	f.VisitPage(rid.Page, func(sp *storage.SlottedPage, excl bool) {
		c.Prepare(sp, excl)
		if c.Insert(sp, excl, 1, []byte{1}) {
			t.Error("wrong payload size accepted")
		}
		if c.Insert(sp, false, 1, pay(c, 1)) {
			t.Error("insert without exclusive latch accepted")
		}
		if c.Insert(sp, excl, ^uint64(0), pay(c, 1)) {
			t.Error("reserved fk value accepted")
		}
	})
	if c.Stats().SkippedNoLatch == 0 {
		t.Error("skipped counter not incremented")
	}
}
