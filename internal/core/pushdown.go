package core

import (
	"fmt"

	"repro/internal/tuple"
)

// CmpOp is a comparison operator for a pushed-down filter.
type CmpOp int

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Filter is one field comparison. Filters passed to a query are a
// conjunction: a row is served only when every filter matches.
// Comparisons involving NULL (a NULL row value or a NULL filter value)
// never match, including CmpNe — the SQL three-valued convention
// collapsed to boolean.
type Filter struct {
	Field string
	Op    CmpOp
	Value tuple.Value
}

// WithFilter adds pushed-down filters to a query (repeatable;
// conjunction). On an index query, filters over key fields are
// evaluated on decoded key bytes before any cache or heap access, and
// filters over cached fields are evaluated on the cached payload under
// a cache hit — rows rejected there never touch the heap. Filters over
// any other field force a heap fetch for rows that survive the cheaper
// tiers. Rejected rows do not count toward WithLimit.
func WithFilter(filters ...Filter) QueryOption {
	return func(c *queryConfig) { c.filters = append(c.filters, filters...) }
}

// cmpMatch evaluates one comparison. NULL on either side never matches.
func cmpMatch(rowVal tuple.Value, op CmpOp, filterVal tuple.Value) bool {
	if rowVal.Null || filterVal.Null {
		return false
	}
	c := rowVal.Compare(filterVal)
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// boundFilter is a filter resolved against a schema position.
type boundFilter struct {
	pos int // schema position
	op  CmpOp
	val tuple.Value
}

// filterPlan classifies an index query's filters by the cheapest tier
// that can evaluate them: key filters run on decoded key bytes (no IO
// beyond the leaf the cursor already holds), cached filters run on the
// §2.1 cache payload under a hit, and everything else needs the heap
// row. rest holds every non-key filter resolved against schema
// positions so the heap-row fallback can evaluate them uniformly.
type filterPlan struct {
	key    []keyFilter
	cached []cachedFilter
	rest   []boundFilter
	// needsHeap is true when some filter can never be answered from key
	// + cache (a non-key, non-cached field): every surviving row must be
	// fetched.
	needsHeap bool
}

type keyFilter struct {
	src int // index into decoded keyVals
	op  CmpOp
	val tuple.Value
}

type cachedFilter struct {
	ci  int // index into ix.cachedFields
	op  CmpOp
	val tuple.Value
}

// buildFilterPlan resolves and classifies cfg filters for an index
// query. Returns nil when there are no filters.
func (ix *Index) buildFilterPlan(filters []Filter) (*filterPlan, error) {
	if len(filters) == 0 {
		return nil, nil
	}
	fp := &filterPlan{}
	for _, f := range filters {
		if f.Op < CmpEq || f.Op > CmpGe {
			return nil, fmt.Errorf("core: filter on %q: unknown operator %v", f.Field, f.Op)
		}
		pos := ix.table.schema.Index(f.Field)
		if pos < 0 {
			return nil, fmt.Errorf("core: filter field %q not in %s", f.Field, ix.table.schema)
		}
		if want := ix.table.schema.Field(pos).Kind; f.Value.Kind != want {
			return nil, fmt.Errorf("core: filter on %q: value kind %v, want %v", f.Field, f.Value.Kind, want)
		}
		if ki := indexOf(ix.keyFields, pos); ki >= 0 {
			fp.key = append(fp.key, keyFilter{src: ki, op: f.Op, val: f.Value})
			continue
		}
		fp.rest = append(fp.rest, boundFilter{pos: pos, op: f.Op, val: f.Value})
		if ci := indexOf(ix.cachedFields, pos); ci >= 0 {
			fp.cached = append(fp.cached, cachedFilter{ci: ci, op: f.Op, val: f.Value})
		} else {
			fp.needsHeap = true
		}
	}
	return fp, nil
}

// coverable reports whether every filter can be answered without the
// heap — the pushdown precondition for aggregates.
func (fp *filterPlan) coverable() bool {
	return fp == nil || !fp.needsHeap
}

// passKey evaluates the key-tier filters against decoded key values.
func (fp *filterPlan) passKey(keyVals []tuple.Value) bool {
	for _, f := range fp.key {
		if !cmpMatch(keyVals[f.src], f.op, f.val) {
			return false
		}
	}
	return true
}

// passCached evaluates the cached-tier filters against a cache payload.
// ok=false means a payload field failed to decode — the caller must
// fall back to the heap row, where passRow re-evaluates everything.
func (fp *filterPlan) passCached(ix *Index, payload []byte) (pass, ok bool) {
	if len(payload) != ix.payloadWidth {
		return false, false
	}
	for _, f := range fp.cached {
		v, vok := ix.decodePayloadField(payload, f.ci)
		if !vok {
			return false, false
		}
		if !cmpMatch(v, f.op, f.val) {
			return false, true
		}
	}
	return true, true
}

// passRow evaluates every non-key filter against the full heap row.
// Key filters are excluded — the caller already passed them.
func (fp *filterPlan) passRow(row tuple.Row) bool {
	for _, f := range fp.rest {
		if !cmpMatch(row[f.pos], f.op, f.val) {
			return false
		}
	}
	return true
}

// heapFilters resolves filters against a table schema for heap-order
// scans (no index tiers to exploit — every filter runs on the decoded
// row).
func (t *Table) heapFilters(filters []Filter) ([]boundFilter, error) {
	if len(filters) == 0 {
		return nil, nil
	}
	out := make([]boundFilter, len(filters))
	for i, f := range filters {
		if f.Op < CmpEq || f.Op > CmpGe {
			return nil, fmt.Errorf("core: filter on %q: unknown operator %v", f.Field, f.Op)
		}
		pos := t.schema.Index(f.Field)
		if pos < 0 {
			return nil, fmt.Errorf("core: filter field %q not in %s", f.Field, t.schema)
		}
		if want := t.schema.Field(pos).Kind; f.Value.Kind != want {
			return nil, fmt.Errorf("core: filter on %q: value kind %v, want %v", f.Field, f.Value.Kind, want)
		}
		out[i] = boundFilter{pos: pos, op: f.Op, val: f.Value}
	}
	return out, nil
}

func passBound(row tuple.Row, filters []boundFilter) bool {
	for _, f := range filters {
		if !cmpMatch(row[f.pos], f.op, f.val) {
			return false
		}
	}
	return true
}
