package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// AggOp is a simple aggregate operator.
type AggOp int

const (
	// AggCount counts rows (Field == "") or non-NULL values of a field.
	AggCount AggOp = iota
	// AggSum sums a numeric field (integer kinds fold to INT64, DOUBLE
	// to DOUBLE). NULLs are skipped.
	AggSum
	// AggMin tracks the smallest non-NULL value of a field.
	AggMin
	// AggMax tracks the largest non-NULL value of a field.
	AggMax
)

func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return fmt.Sprintf("AggOp(%d)", int(op))
}

// AggSpec names one aggregate to compute: an operator and the field it
// folds (empty for count(*)).
type AggSpec struct {
	Op    AggOp
	Field string
}

// AggResult is the outcome of Table.Aggregate / Index.Aggregate.
type AggResult struct {
	// Values holds one result per input AggSpec, in order: INT64 for
	// counts and integer sums, DOUBLE for double sums, the field's own
	// kind for min/max (NULL of that kind when no rows matched).
	Values []tuple.Value
	// Rows is how many rows matched the filters.
	Rows int64
	// Pushdown reports whether evaluation ran below the cursor, on key
	// bytes and cached payloads (with per-entry heap fallback on cache
	// misses), instead of folding materialized rows.
	Pushdown bool
	// Segments is how many plan segments the scan covered (1 when
	// serial).
	Segments int
	// Stats aggregates the answer-path counters across segments.
	Stats QueryStats
}

// aggBound is a spec resolved against the schema (and, on an index
// path, against the index's key/cached field layout).
type aggBound struct {
	op     AggOp
	pos    int // schema position, -1 = count(*)
	kind   tuple.Kind
	ki, ci int // keyFields / cachedFields index, -1 when not there
}

// bindAggSpecs resolves and validates specs against the table schema.
func (t *Table) bindAggSpecs(specs []AggSpec) ([]aggBound, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: Aggregate needs at least one AggSpec")
	}
	bounds := make([]aggBound, len(specs))
	for i, sp := range specs {
		b := aggBound{op: sp.Op, pos: -1, ki: -1, ci: -1}
		if sp.Field == "" {
			if sp.Op != AggCount {
				return nil, fmt.Errorf("core: %v needs a field", sp.Op)
			}
		} else {
			pos := t.schema.Index(sp.Field)
			if pos < 0 {
				return nil, fmt.Errorf("core: aggregate field %q not in %s", sp.Field, t.schema)
			}
			b.pos = pos
			b.kind = t.schema.Field(pos).Kind
		}
		switch sp.Op {
		case AggCount:
		case AggSum:
			switch b.kind {
			case tuple.KindInt64, tuple.KindInt32, tuple.KindInt16, tuple.KindInt8, tuple.KindFloat64:
			default:
				return nil, fmt.Errorf("core: sum(%s): kind %v is not summable", sp.Field, b.kind)
			}
		case AggMin, AggMax:
		default:
			return nil, fmt.Errorf("core: unknown aggregate op %d", int(sp.Op))
		}
		bounds[i] = b
	}
	return bounds, nil
}

// aggAcc is one aggregate's accumulator.
type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	best  tuple.Value
	seen  bool
}

// aggState folds rows into accumulators; one per segment, merged at
// the end.
type aggState struct {
	bounds []aggBound
	rows   int64
	accs   []aggAcc
	stats  QueryStats
}

func newAggState(bounds []aggBound) *aggState {
	return &aggState{bounds: bounds, accs: make([]aggAcc, len(bounds))}
}

func cloneValue(v tuple.Value) tuple.Value {
	if v.Raw != nil {
		v.Raw = append([]byte(nil), v.Raw...)
	}
	return v
}

// fold accumulates one matching row. vals[i] is the value for bounds[i]
// (ignored for count(*)).
func (st *aggState) fold(vals []tuple.Value) {
	st.rows++
	for i := range st.bounds {
		b := &st.bounds[i]
		a := &st.accs[i]
		switch b.op {
		case AggCount:
			if b.pos < 0 || !vals[i].Null {
				a.count++
			}
		case AggSum:
			if vals[i].Null {
				continue
			}
			if b.kind == tuple.KindFloat64 {
				a.sumF += vals[i].Float
			} else {
				a.sumI += vals[i].Int
			}
		case AggMin, AggMax:
			v := vals[i]
			if v.Null {
				continue
			}
			if !a.seen {
				a.best = cloneValue(v)
				a.seen = true
				continue
			}
			c := v.Compare(a.best)
			if (b.op == AggMin && c < 0) || (b.op == AggMax && c > 0) {
				a.best = cloneValue(v)
			}
		}
	}
}

// merge folds another segment's partial state into st.
func (st *aggState) merge(o *aggState) {
	st.rows += o.rows
	st.stats.Add(o.stats)
	for i := range st.accs {
		a, b := &st.accs[i], &o.accs[i]
		a.count += b.count
		a.sumI += b.sumI
		a.sumF += b.sumF
		if b.seen {
			if !a.seen {
				a.best, a.seen = b.best, true
			} else {
				c := b.best.Compare(a.best)
				if (st.bounds[i].op == AggMin && c < 0) || (st.bounds[i].op == AggMax && c > 0) {
					a.best = b.best
				}
			}
		}
	}
}

// result renders the accumulators as output values.
func (st *aggState) result() []tuple.Value {
	out := make([]tuple.Value, len(st.bounds))
	for i := range st.bounds {
		b := &st.bounds[i]
		a := &st.accs[i]
		switch b.op {
		case AggCount:
			out[i] = tuple.Int64(a.count)
		case AggSum:
			if b.kind == tuple.KindFloat64 {
				out[i] = tuple.Float64(a.sumF)
			} else {
				out[i] = tuple.Int64(a.sumI)
			}
		case AggMin, AggMax:
			if !a.seen {
				out[i] = tuple.Null(b.kind)
			} else {
				out[i] = a.best
			}
		}
	}
	return out
}

// Aggregate computes simple aggregates over the table. With WithIndex
// it runs over that index's key range (enabling pushdown and
// WithParallel); without, it folds a heap-order scan. WithFilter
// restricts the rows; WithLimit, WithReverse, and WithProjection are
// invalid here.
func (t *Table) Aggregate(specs []AggSpec, opts ...QueryOption) (AggResult, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		ix, err := t.Index(cfg.index)
		if err != nil {
			return AggResult{}, err
		}
		cfg.index = ""
		return ix.aggregate(cfg, specs)
	}
	if err := validateAggConfig(cfg); err != nil {
		return AggResult{}, err
	}
	if cfg.lo != nil || cfg.hi != nil || cfg.prefix != nil {
		return AggResult{}, fmt.Errorf("core: key bounds on %q require an index (add WithIndex)", t.name)
	}
	if cfg.parallel > 1 {
		return AggResult{}, fmt.Errorf("core: WithParallel on %q requires an index (add WithIndex)", t.name)
	}
	bounds, err := t.bindAggSpecs(specs)
	if err != nil {
		return AggResult{}, err
	}
	filters, err := t.heapFilters(cfg.filters)
	if err != nil {
		return AggResult{}, err
	}
	cur := &Cursor{src: &heapSource{t: t, pages: t.file.Pages(), filters: filters, snap: snapLatest}}
	defer cur.Close()
	st := newAggState(bounds)
	if err := foldCursor(cur, st); err != nil {
		return AggResult{}, err
	}
	st.stats.Add(cur.Stats())
	return AggResult{Values: st.result(), Rows: st.rows, Segments: 1, Stats: st.stats}, nil
}

// Aggregate computes simple aggregates over the index's key range —
// the same bounds, filters, cache-policy, and WithParallel options as
// Query. When the cache policy is CacheFirst and every needed field
// (aggregated or filtered) is a key or cached field, evaluation is
// pushed below the cursor: entries fold from key bytes and cached
// payloads captured under the scan latch, with a per-entry heap
// fallback on cache misses keeping the result exact.
func (ix *Index) Aggregate(specs []AggSpec, opts ...QueryOption) (AggResult, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		return AggResult{}, fmt.Errorf("core: WithIndex is only valid on Table.Aggregate")
	}
	return ix.aggregate(cfg, specs)
}

func validateAggConfig(cfg queryConfig) error {
	if cfg.limit != 0 {
		return fmt.Errorf("core: WithLimit is not valid for Aggregate")
	}
	if cfg.reverse {
		return fmt.Errorf("core: WithReverse is not valid for Aggregate")
	}
	if cfg.project != nil {
		return fmt.Errorf("core: WithProjection is not valid for Aggregate")
	}
	return nil
}

func (ix *Index) aggregate(cfg queryConfig, specs []AggSpec) (AggResult, error) {
	if err := validateAggConfig(cfg); err != nil {
		return AggResult{}, err
	}
	bounds, err := ix.table.bindAggSpecs(specs)
	if err != nil {
		return AggResult{}, err
	}
	for i := range bounds {
		if bounds[i].pos >= 0 {
			bounds[i].ki = indexOf(ix.keyFields, bounds[i].pos)
			bounds[i].ci = indexOf(ix.cachedFields, bounds[i].pos)
		}
	}
	_, fp, start, end, err := ix.resolveQuery(cfg)
	if err != nil {
		return AggResult{}, err
	}
	pushdown := cfg.policy == CacheFirst && fp.coverable() && boundsCoverable(bounds)
	for i := range bounds {
		if bounds[i].pos >= 0 && bounds[i].ki < 0 && ix.cache == nil {
			pushdown = false // non-key fields with no cache: nothing to push to
		}
	}
	segs := []btree.Segment{{Lo: start, Hi: end}}
	workers := 1
	if cfg.parallel > 1 {
		if segs, err = ix.tree.PlanSegments(start, end, cfg.parallel*segmentsPerWorker); err != nil {
			return AggResult{}, err
		}
		workers = cfg.parallel
		if workers > len(segs) {
			workers = len(segs)
		}
	}
	states := make([]*aggState, len(segs))
	var (
		next  atomic.Int32
		wg    sync.WaitGroup
		errMu sync.Mutex
		wErr  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= len(segs) {
					return
				}
				st := newAggState(bounds)
				var e error
				if pushdown {
					e = ix.aggSegmentPushdown(segs[si], bounds, fp, st)
				} else {
					e = ix.aggSegmentCursor(segs[si], bounds, fp, cfg.policy, st)
				}
				states[si] = st
				if e != nil {
					errMu.Lock()
					if wErr == nil {
						wErr = e
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if wErr != nil {
		return AggResult{}, wErr
	}
	total := newAggState(bounds)
	for _, st := range states {
		if st != nil {
			total.merge(st)
		}
	}
	return AggResult{
		Values:   total.result(),
		Rows:     total.rows,
		Pushdown: pushdown,
		Segments: len(segs),
		Stats:    total.stats,
	}, nil
}

// boundsCoverable reports whether every aggregated field is a key or
// cached field — the pushdown precondition alongside filter
// coverability.
func boundsCoverable(bounds []aggBound) bool {
	for _, b := range bounds {
		if b.pos >= 0 && b.ki < 0 && b.ci < 0 {
			return false
		}
	}
	return true
}

// foldCursor drains cur, folding full-schema rows into st.
func foldCursor(cur *Cursor, st *aggState) error {
	vals := make([]tuple.Value, len(st.bounds))
	for cur.Next() {
		row := cur.Row()
		for i := range st.bounds {
			if st.bounds[i].pos >= 0 {
				vals[i] = row[st.bounds[i].pos]
			}
		}
		st.fold(vals)
	}
	return cur.Err()
}

// aggSegmentCursor is the exact-but-unpushed path: a serial cursor over
// the segment with the same filters, folding materialized rows. Also
// the reference implementation pushdown is tested against.
func (ix *Index) aggSegmentCursor(seg btree.Segment, bounds []aggBound, fp *filterPlan, policy CachePolicy, st *aggState) error {
	s := ix.newIndexSource(seg.Lo, seg.Hi, ix.projAll, fp, policy, false)
	cur := &Cursor{src: s}
	defer cur.Close()
	if err := foldCursor(cur, st); err != nil {
		return err
	}
	st.stats.Add(cur.Stats())
	return nil
}

// aggSegmentPushdown folds the segment without materializing rows:
// block-fetched entries evaluate on decoded key bytes plus the cache
// payloads the entry visitor captured under the leaf latch. Entries
// whose needed fields miss the cache fall back to a heap fetch, so the
// result is identical to the cursor path.
func (ix *Index) aggSegmentPushdown(seg btree.Segment, bounds []aggBound, fp *filterPlan, st *aggState) error {
	// Does any bound or filter need a non-key field? If not, the scan
	// never probes the cache at all — key bytes answer everything.
	cacheNeeded := fp != nil && len(fp.cached) > 0
	needKey := fp != nil && len(fp.key) > 0
	for _, b := range bounds {
		if b.pos >= 0 && b.ki < 0 {
			cacheNeeded = true
		}
		if b.ki >= 0 {
			needKey = true
		}
	}
	keyKinds := make([]tuple.Kind, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		keyKinds[i] = ix.table.schema.Field(pos).Kind
	}
	var (
		eb       btree.EntryBlock
		hits     []bool
		payloads []byte
		poffs    []int32
		keyVals  []tuple.Value
		heapRow  tuple.Row
		heapBuf  []byte
	)
	var bopts []btree.CursorOption
	if cacheNeeded {
		bopts = append(bopts, btree.WithEntryVisitor(func(l *btree.Leaf, pos int) {
			hit := false
			if ix.cache.Prepare(l) {
				if pl, ok := ix.cache.LookupInto(payloads, l, l.ValueAt(pos)); ok {
					payloads = pl
					hit = true
				}
			}
			if len(poffs) == 0 {
				poffs = append(poffs, 0)
			}
			poffs = append(poffs, int32(len(payloads)))
			hits = append(hits, hit)
		}))
	}
	bt := ix.tree.NewCursor(seg.Lo, seg.Hi, bopts...)
	defer bt.Close()
	vals := make([]tuple.Value, len(bounds))
	for {
		hits, payloads, poffs = hits[:0], payloads[:0], poffs[:0]
		k := bt.NextBlock(&eb, blockRows)
		if k == 0 {
			st.stats.LeafFetches += bt.LeafFetches()
			return bt.Err()
		}
		for i := 0; i < k; i++ {
			key := eb.Key(i)
			// Aggregates read latest state: skip dead versions (their
			// entries persist until GC).
			if !ix.table.ridVisible(storage.UnpackRID(eb.Value(i)), snapLatest) {
				continue
			}
			hit := cacheNeeded && hits[i]
			var payload []byte
			if hit {
				payload = payloads[poffs[i]:poffs[i+1]]
			}
			if needKey {
				kv, err := tuple.DecodeKeyInto(keyVals[:0], key, keyKinds...)
				if err != nil {
					return fmt.Errorf("core: decoding key: %w", err)
				}
				keyVals = kv
			}
			if fp != nil && len(fp.key) > 0 && !fp.passKey(keyVals) {
				continue
			}
			if hit && fp != nil && len(fp.cached) > 0 {
				pass, ok := fp.passCached(ix, payload)
				if ok && !pass {
					continue
				}
				if !ok {
					hit = false
				}
			}
			// Fill vals from the cheapest tier; a payload decode failure
			// or cache miss demotes the entry to the heap path.
			needHeap := cacheNeeded && !hit
			if !needHeap {
				for j := range bounds {
					b := &bounds[j]
					if b.pos < 0 {
						continue
					}
					if b.ki >= 0 {
						vals[j] = keyVals[b.ki]
						continue
					}
					v, ok := ix.decodePayloadField(payload, b.ci)
					if !ok {
						needHeap = true
						break
					}
					vals[j] = v
				}
			}
			if needHeap {
				rid := storage.UnpackRID(eb.Value(i))
				rec, err := ix.table.file.GetInto(heapBuf[:0], rid)
				if err != nil {
					if errors.Is(err, storage.ErrDeleted) {
						continue // racing delete; the row is gone
					}
					return fmt.Errorf("core: fetching %v: %w", rid, err)
				}
				heapBuf = rec[:0]
				row, _, derr := tuple.DecodeInto(heapRow, ix.table.schema, rec)
				if derr != nil {
					return fmt.Errorf("core: decoding %v: %w", rid, derr)
				}
				heapRow = row
				st.stats.HeapReads++
				if fp != nil && !fp.passRow(row) {
					continue
				}
				for j := range bounds {
					if bounds[j].pos >= 0 {
						vals[j] = row[bounds[j].pos]
					}
				}
			} else if hit {
				st.stats.CacheHits++
			}
			st.fold(vals)
		}
	}
}
