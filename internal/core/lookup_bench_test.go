package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/tuple"
)

// benchIndex builds an engine with an explicit pool shard count, a
// populated table, and a cached unique index over it.
func benchIndex(b *testing.B, rows, poolPages, shards int, cached bool) *Index {
	b.Helper()
	e, err := NewEngine(Options{PageSize: 4096, BufferPoolPages: poolPages, PoolShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	opts := []IndexOption{WithFillFactor(0.68)}
	if cached {
		opts = append(opts, WithCache("latest_rev", "len"), WithCacheSeed(1))
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

var benchProj = []string{"namespace", "title", "latest_rev", "len"}

// benchKeys precomputes key values so benchmark loops measure the
// lookup, not fmt.Sprintf.
func benchKeys(rows int) [][]tuple.Value {
	keys := make([][]tuple.Value, rows)
	for i := range keys {
		keys[i] = pageKey(i)
	}
	return keys
}

// BenchmarkLookupHitParallel is the paper's headline path under
// parallel load: every lookup is answered from the index-leaf cache,
// no heap access. shards=1 reproduces the single-mutex buffer pool.
func BenchmarkLookupHitParallel(b *testing.B) {
	const rows = 8000
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ix := benchIndex(b, rows, 1<<14, shards, true)
			if _, err := ix.WarmCache(); err != nil {
				b.Fatal(err)
			}
			keys := benchKeys(rows)
			// Verified cache-resident keys only.
			var hot [][]tuple.Value
			for i := 0; i < rows; i++ {
				if _, res, err := ix.Lookup(benchProj, keys[i]...); err == nil && res.CacheHit {
					hot = append(hot, keys[i])
				}
			}
			if len(hot) == 0 {
				b.Fatal("no cache-resident keys")
			}
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := seq.Add(1) * 0x9E3779B9
				buf := make(tuple.Row, 0, len(benchProj))
				for pb.Next() {
					n = n*1103515245 + 12345
					row, _, err := ix.LookupInto(buf, benchProj, hot[n%uint64(len(hot))]...)
					if err != nil {
						b.Error(err)
						return
					}
					buf = row
				}
			})
		})
	}
}

// BenchmarkLookupMissParallel is the heap path: no index cache, the
// pool holds a fraction of the working set, so lookups fetch heap pages
// through eviction churn.
func BenchmarkLookupMissParallel(b *testing.B) {
	const rows = 8000
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ix := benchIndex(b, rows, 96, shards, false)
			keys := benchKeys(rows)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := seq.Add(1) * 0x9E3779B9
				buf := make(tuple.Row, 0, len(benchProj))
				for pb.Next() {
					n = n*1103515245 + 12345
					row, _, err := ix.LookupInto(buf, benchProj, keys[n%uint64(rows)]...)
					if err != nil {
						b.Error(err)
						return
					}
					buf = row
				}
			})
		})
	}
}

// BenchmarkLookupMixedParallel interleaves cached lookups with updates
// (1 in 16) that invalidate cache entries through the predicate log —
// the read-mostly OLTP mix the paper targets.
func BenchmarkLookupMixedParallel(b *testing.B) {
	const rows = 4000
	for _, shards := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ix := benchIndex(b, rows, 1<<14, shards, true)
			if _, err := ix.WarmCache(); err != nil {
				b.Fatal(err)
			}
			tb := ix.table
			keys := benchKeys(rows)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := seq.Add(1) * 0x9E3779B9
				buf := make(tuple.Row, 0, len(benchProj))
				for pb.Next() {
					n = n*1103515245 + 12345
					i := int(n % uint64(rows))
					if n%16 == 0 {
						rid, found, err := ix.LookupRID(keys[i]...)
						if err != nil || !found {
							b.Errorf("update lookup %d: %v", i, err)
							return
						}
						row, err := tb.Get(rid)
						if err != nil {
							b.Error(err)
							return
						}
						row[4] = tuple.Int64(row[4].Int + 1)
						if _, err := tb.Update(rid, row); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					row, _, err := ix.LookupInto(buf, benchProj, keys[i]...)
					if err != nil {
						b.Error(err)
						return
					}
					buf = row
				}
			})
		})
	}
}

// BenchmarkLookupManyHit measures the batched path against the same
// warmed index: 64-key batches, one descent per leaf group.
func BenchmarkLookupManyHit(b *testing.B) {
	const rows = 8000
	ix := benchIndex(b, rows, 1<<14, 0, true)
	if _, err := ix.WarmCache(); err != nil {
		b.Fatal(err)
	}
	const batch = 64
	keys := make([][]tuple.Value, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for k := range keys {
			keys[k] = pageKey((n*batch + k*37) % rows)
		}
		if _, _, err := ix.LookupMany(benchProj, keys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batch, "keys/op")
}
