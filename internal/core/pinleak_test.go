package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// These tests are the runtime counterpart of the nblb-vet pinleak
// analyzer: the analyzer proves every acquire/release pairs up on every
// static path, and these prove the dynamic accounting agrees — after an
// operation dies mid-flight on an injected disk fault, the buffer pool
// must report zero pinned frames. A nonzero count here is a pin leaked
// on an error path the analyzer missed (an escape hatch annotation that
// lied, or an interprocedural handoff it can't see).

func pinleakSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "val", Kind: tuple.KindString},
	)
}

func pinleakRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i)),
		tuple.String(fmt.Sprintf("val-%06d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")),
	}
}

// TestApplyAllocateFaultLeavesNoPins arms an allocation fault deep
// enough that engine and table setup survive, then drives a bulk Apply
// into it: the batch dies partway through heap extension or an index
// split, and every frame pinned by the half-done operation must be
// unpinned on the way out.
func TestApplyAllocateFaultLeavesNoPins(t *testing.T) {
	inner, err := storage.NewMemDisk(1024)
	if err != nil {
		t.Fatal(err)
	}
	fd := storage.NewFaultDisk(inner, storage.FaultPlan{
		Op:    storage.FaultAllocate,
		After: 40,
		Mode:  storage.FaultFail,
	})
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 128, Disk: fd})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()

	tb, err := e.CreateTable("t", pinleakSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if fd.Fired() {
		t.Fatal("fault fired during setup; raise FaultPlan.After")
	}

	var b Batch
	for i := 0; i < 5000; i++ {
		b.Insert(pinleakRow(i))
	}
	_, err = tb.Apply(&b)
	if err == nil {
		t.Fatal("Apply succeeded; batch too small to reach the armed allocation")
	}
	if !fd.Fired() {
		t.Fatalf("Apply failed (%v) but not from the injected fault", err)
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Apply error does not wrap storage.ErrInjected: %v", err)
	}
	if pins := e.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames still pinned after failed Apply", pins)
	}

	// The engine must still work: the next Apply (allocation fault is
	// one-shot) goes through and a scan sees a consistent table.
	var b2 Batch
	for i := 10000; i < 10010; i++ {
		b2.Insert(pinleakRow(i))
	}
	if _, err := tb.Apply(&b2); err != nil {
		t.Fatalf("Apply after fault: %v", err)
	}
	cur, err := tb.Query()
	if err != nil {
		t.Fatalf("Query after fault: %v", err)
	}
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("scan after fault: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor Close: %v", err)
	}
	if pins := e.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames still pinned after recovery scan", pins)
	}
}

// TestQueryReadFaultLeavesNoPins makes a scan fail mid-flight: the
// table is built clean, closed, and reopened behind a FaultDisk with a
// pool far smaller than the table, so a full scan must fetch from disk.
// The fault stays disarmed through reopen and warm-up, then Rearm trips
// the very next page read — the fetch fails and the cursor errors. The
// scan's own pins (and the failed fetch's) must all be released.
func TestQueryReadFaultLeavesNoPins(t *testing.T) {
	dir, err := os.MkdirTemp("", "nblb-pinleak")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db")

	// Phase 1: build a table much larger than the reopened pool and
	// close it clean (WAL mode, so the catalog survives the reopen).
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 512, Path: path, WAL: true})
	if err != nil {
		t.Fatalf("NewEngine (build): %v", err)
	}
	tb, err := e.CreateTable("t", pinleakSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tb.CreateIndex("by_id", []string{"id"}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	var b Batch
	for i := 0; i < 2000; i++ {
		b.Insert(pinleakRow(i))
	}
	if _, err := tb.Apply(&b); err != nil {
		t.Fatalf("bulk Apply: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close (build): %v", err)
	}

	// Phase 2: reopen behind a disarmed FaultDisk and a pool that
	// cannot hold the table.
	inner, err := storage.NewFileDisk(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fd := storage.NewFaultDisk(inner, storage.FaultPlan{})
	e2, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 32, Path: path, WAL: true, Disk: fd})
	if err != nil {
		t.Fatalf("NewEngine (fault): %v", err)
	}
	tb2, err := e2.Table("t")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}

	// Arm the fault only now: the next page fetched from disk fails.
	// The 32-page pool guarantees the scan fetches almost immediately.
	fd.Rearm(storage.FaultPlan{Op: storage.FaultRead, After: 1})
	var scanErr error
	cur, err := tb2.Query()
	if err != nil {
		scanErr = err // the fault can fire while Query positions the scan
	} else {
		for cur.Next() {
		}
		scanErr = cur.Err()
		cur.Close()
	}
	if scanErr == nil {
		t.Fatal("scan succeeded; eviction never hit the write fault")
	}
	if !fd.Fired() {
		t.Fatalf("scan failed (%v) but not from the injected fault", scanErr)
	}
	if !errors.Is(scanErr, storage.ErrInjected) {
		t.Fatalf("scan error does not wrap storage.ErrInjected: %v", scanErr)
	}
	if pins := e2.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames still pinned after failed scan", pins)
	}

	// One-shot fault has passed; a retry scan must now complete.
	cur2, err := tb2.Query()
	if err != nil {
		t.Fatalf("retry Query: %v", err)
	}
	n := 0
	for cur2.Next() {
		n++
	}
	if err := cur2.Err(); err != nil {
		t.Fatalf("retry scan: %v", err)
	}
	if err := cur2.Close(); err != nil {
		t.Fatalf("retry cursor Close: %v", err)
	}
	if n != 2000 {
		t.Fatalf("retry scan saw %d rows, want 2000", n)
	}
	if pins := e2.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames still pinned after retry scan", pins)
	}
	if err := e2.Close(); err != nil {
		t.Fatalf("Close (fault engine): %v", err)
	}
}
