package core

import (
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func pagesSchema() *tuple.Schema {
	// Modeled on Wikipedia's page table: the name_title index keys
	// (namespace, title) and caches 4 small fields (Section 2.1.4).
	return tuple.MustSchema(
		tuple.Field{Name: "page_id", Kind: tuple.KindInt64},
		tuple.Field{Name: "namespace", Kind: tuple.KindInt32},
		tuple.Field{Name: "title", Kind: tuple.KindString, Size: 64},
		tuple.Field{Name: "is_redirect", Kind: tuple.KindBool},
		tuple.Field{Name: "latest_rev", Kind: tuple.KindInt64},
		tuple.Field{Name: "len", Kind: tuple.KindInt32},
		tuple.Field{Name: "touched", Kind: tuple.KindTimestamp},
		tuple.Field{Name: "content", Kind: tuple.KindString},
	)
}

func pageRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i)),
		tuple.Int32(0),
		tuple.String(fmt.Sprintf("Title_%05d", i)),
		tuple.Bool(i%7 == 0),
		tuple.Int64(int64(i * 10)),
		tuple.Int32(int32(100 + i)),
		tuple.TimestampUnix(1300000000 + int64(i)),
		tuple.String(fmt.Sprintf("body of article %d", i)),
	}
}

func TestEngineCreateTableAndCatalog(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.CreateTable("", pagesSchema()); err == nil {
		t.Error("empty name should fail")
	}
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := e.CreateTable("page", pagesSchema()); err == nil {
		t.Error("duplicate table should fail")
	}
	got, err := e.Table("page")
	if err != nil || got != tb {
		t.Errorf("Table lookup: %v %v", got, err)
	}
	if _, err := e.Table("missing"); err == nil {
		t.Error("missing table should fail")
	}
	if names := e.Tables(); len(names) != 1 || names[0] != "page" {
		t.Errorf("Tables() = %v", names)
	}
	if err := e.DropTable("page"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if err := e.DropTable("page"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTableCRUD(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	rid, err := tb.Insert(pageRow(1))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	row, err := tb.Get(rid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !row.Equal(pageRow(1)) {
		t.Error("row round trip mismatch")
	}
	updated := pageRow(1)
	updated[5] = tuple.Int32(999)
	nrid, err := tb.Update(rid, updated)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	row, _ = tb.Get(nrid)
	if row[5].Int != 999 {
		t.Error("update not applied")
	}
	if err := tb.Delete(nrid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if tb.Rows() != 0 {
		t.Errorf("Rows = %d after delete", tb.Rows())
	}
	if _, err := tb.Get(nrid); err == nil {
		t.Error("Get of deleted row should fail")
	}
}

func TestIndexLookupThroughCache(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("is_redirect", "latest_rev", "len", "touched"),
		WithFillFactor(0.68), WithCacheSeed(42))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	proj := []string{"namespace", "title", "latest_rev", "len"}
	key := func(i int) []tuple.Value {
		return []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
	}
	// First lookup: miss, fills cache.
	row, res, err := ix.Lookup(proj, key(7)...)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !res.Found || res.CacheHit || !res.HeapAccess || !res.CacheFilled {
		t.Errorf("first lookup result: %+v", res)
	}
	if row[2].Int != 70 || row[3].Int != 107 {
		t.Errorf("projected row wrong: %v", row)
	}
	// Second lookup: answered from the index cache, no heap access.
	row, res, err = ix.Lookup(proj, key(7)...)
	if err != nil {
		t.Fatalf("Lookup 2: %v", err)
	}
	if !res.Found || !res.CacheHit || res.HeapAccess {
		t.Errorf("second lookup result: %+v", res)
	}
	if row[2].Int != 70 {
		t.Errorf("cached row wrong: %v", row)
	}
	// Projection needing an uncached field must go to the heap.
	_, res, err = ix.Lookup([]string{"content"}, key(7)...)
	if err != nil {
		t.Fatalf("Lookup 3: %v", err)
	}
	if res.CacheHit || !res.HeapAccess {
		t.Errorf("uncovered projection result: %+v", res)
	}
	// Missing key.
	_, res, err = ix.Lookup(proj, tuple.Int32(0), tuple.String("Absent"))
	if err != nil {
		t.Fatalf("Lookup absent: %v", err)
	}
	if res.Found {
		t.Error("absent key reported found")
	}
}

func TestIndexCacheInvalidationOnUpdate(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	for i := 0; i < 50; i++ {
		tb.Insert(pageRow(i))
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(1))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	proj := []string{"latest_rev"}
	key := []tuple.Value{tuple.Int32(0), tuple.String("Title_00003")}
	// Fill + verify cached value.
	ix.Lookup(proj, key...)
	row, res, _ := ix.Lookup(proj, key...)
	if !res.CacheHit || row[0].Int != 30 {
		t.Fatalf("precondition: cache hit with 30, got %+v %v", res, row)
	}
	// Update the cached field through the table API.
	rid, found, err := ix.LookupRID(key...)
	if err != nil || !found {
		t.Fatalf("LookupRID: %v %v", found, err)
	}
	newRow := pageRow(3)
	newRow[4] = tuple.Int64(777)
	if _, err := tb.Update(rid, newRow); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// The stale entry must not be served.
	row, res, err = ix.Lookup(proj, key...)
	if err != nil {
		t.Fatalf("Lookup after update: %v", err)
	}
	if row[0].Int != 777 {
		t.Fatalf("stale cache served: got %d, want 777 (res=%+v)", row[0].Int, res)
	}
}

func TestIndexCacheInvalidationOnDelete(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	for i := 0; i < 50; i++ {
		tb.Insert(pageRow(i))
	}
	ix, _ := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(1))
	key := []tuple.Value{tuple.Int32(0), tuple.String("Title_00010")}
	ix.Lookup([]string{"latest_rev"}, key...)
	rid, _, _ := ix.LookupRID(key...)
	if err := tb.Delete(rid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	_, res, err := ix.Lookup([]string{"latest_rev"}, key...)
	if err != nil {
		t.Fatalf("Lookup after delete: %v", err)
	}
	if res.Found {
		t.Error("deleted row still found via index")
	}
}

func TestEngineRestartInvalidatesCaches(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	for i := 0; i < 50; i++ {
		tb.Insert(pageRow(i))
	}
	ix, _ := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(1))
	key := []tuple.Value{tuple.Int32(0), tuple.String("Title_00005")}
	ix.Lookup([]string{"latest_rev"}, key...)
	_, res, _ := ix.Lookup([]string{"latest_rev"}, key...)
	if !res.CacheHit {
		t.Fatal("precondition: cache hit")
	}
	if err := e.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	row, res, err := ix.Lookup([]string{"latest_rev"}, key...)
	if err != nil {
		t.Fatalf("Lookup after restart: %v", err)
	}
	if res.CacheHit {
		t.Error("cache hit right after restart: stale volatile data survived")
	}
	if row[0].Int != 50 {
		t.Errorf("wrong value after restart: %d", row[0].Int)
	}
}

func TestIndexOnEmptyTableThenInserts(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"))
	if err != nil {
		t.Fatalf("CreateIndex on empty table: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	key := []tuple.Value{tuple.Int32(0), tuple.String("Title_00042")}
	row, res, err := ix.Lookup([]string{"latest_rev"}, key...)
	if err != nil || !res.Found {
		t.Fatalf("Lookup: %+v %v", res, err)
	}
	if row[0].Int != 420 {
		t.Errorf("got %d", row[0].Int)
	}
}

func TestUniqueIndexRejectsDuplicates(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	tb.CreateIndex("pk", []string{"page_id"})
	if _, err := tb.Insert(pageRow(1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := tb.Insert(pageRow(1)); err == nil {
		t.Error("duplicate key insert should fail")
	}
}

func TestNonUniqueIndexLookupAll(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	ix, err := tb.CreateIndex("by_ns", []string{"namespace"}, NonUnique())
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	for i := 0; i < 20; i++ {
		r := pageRow(i)
		r[1] = tuple.Int32(int32(i % 3))
		tb.Insert(r)
	}
	rows, err := ix.LookupAll(tuple.Int32(1))
	if err != nil {
		t.Fatalf("LookupAll: %v", err)
	}
	want := 0
	for i := 0; i < 20; i++ {
		if i%3 == 1 {
			want++
		}
	}
	if len(rows) != want {
		t.Errorf("LookupAll returned %d rows, want %d", len(rows), want)
	}
	// Cache on non-unique index must be rejected.
	if _, err := tb.CreateIndex("bad", []string{"namespace"}, NonUnique(), WithCache("len")); err == nil {
		t.Error("cache on non-unique index should fail")
	}
}

func TestCreateIndexValidation(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	if _, err := tb.CreateIndex("", []string{"page_id"}); err == nil {
		t.Error("empty index name should fail")
	}
	if _, err := tb.CreateIndex("x", nil); err == nil {
		t.Error("no key fields should fail")
	}
	if _, err := tb.CreateIndex("x", []string{"nope"}); err == nil {
		t.Error("unknown key field should fail")
	}
	if _, err := tb.CreateIndex("x", []string{"page_id"}, WithCache("nope")); err == nil {
		t.Error("unknown cached field should fail")
	}
	if _, err := tb.CreateIndex("x", []string{"page_id"}, WithCache("content")); err == nil {
		t.Error("variable-width cached field should fail")
	}
	tb.CreateIndex("ok", []string{"page_id"})
	if _, err := tb.CreateIndex("ok", []string{"page_id"}); err == nil {
		t.Error("duplicate index name should fail")
	}
}

func TestWarmCache(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	for i := 0; i < 200; i++ {
		tb.Insert(pageRow(i))
	}
	ix, _ := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev", "len"), WithCacheSeed(3))
	n, err := ix.WarmCache()
	if err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	if n == 0 {
		t.Fatal("WarmCache installed nothing")
	}
	// A good share of lookups right after warming should hit; the cache
	// cannot cover every key when leaves hold more keys than slots.
	hits := 0
	for i := 0; i < 200; i++ {
		_, res, err := ix.Lookup([]string{"latest_rev"},
			tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i)))
		if err != nil || !res.Found {
			t.Fatalf("Lookup %d: %+v %v", i, res, err)
		}
		if res.CacheHit {
			hits++
		}
	}
	if hits < 40 {
		t.Errorf("only %d/200 cache hits after WarmCache", hits)
	}
}

func TestUpdateRelocationKeepsIndexConsistent(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	ix, _ := tb.CreateIndex("pk", []string{"page_id"}, WithCache("len"))
	rid, _ := tb.Insert(pageRow(1))
	// Fill the row's page so a growing update must relocate it.
	for i := 2; i < 40; i++ {
		tb.Insert(pageRow(i))
	}
	grown := pageRow(1)
	grown[7] = tuple.String(string(make([]byte, 700)))
	nrid, err := tb.Update(rid, grown)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if nrid == rid {
		t.Skip("row did not relocate; page larger than expected")
	}
	row, res, err := ix.Lookup(nil, tuple.Int64(1))
	if err != nil || !res.Found {
		t.Fatalf("Lookup after relocation: %+v %v", res, err)
	}
	if res.RID != nrid {
		t.Errorf("index points at %v, row lives at %v", res.RID, nrid)
	}
	if len(row[7].Str) != 700 {
		t.Error("relocated row content wrong")
	}
}

func TestTableScanDecodes(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	for i := 0; i < 25; i++ {
		tb.Insert(pageRow(i))
	}
	seen := 0
	err := tb.Scan(func(rid storage.RID, row tuple.Row) bool {
		seen++
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if seen != 25 {
		t.Errorf("scanned %d rows", seen)
	}
}
