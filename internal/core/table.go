package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// TableOption configures table creation.
type TableOption func(*tableConfig)

type tableConfig struct {
	appendOnly       bool
	heapFillFactor   float64
	heapInsertShards int
}

// WithAppendOnlyHeap forces inserts to always extend the tail page,
// never refilling older pages' free space — the placement policy whose
// locality waste Section 3.1 measures.
func WithAppendOnlyHeap() TableOption {
	return func(c *tableConfig) { c.appendOnly = true }
}

// WithHeapFillFactor reserves 1−ff of each heap page for update
// headroom and the Section 2.2 join cache.
func WithHeapFillFactor(ff float64) TableOption {
	return func(c *tableConfig) { c.heapFillFactor = ff }
}

// WithHeapInsertShards sets the table's heap insert shard count —
// parallel inserters contend per shard, each of which owns a tail page
// and a free-space map. n < 1 picks automatically (min(8, GOMAXPROCS)),
// overriding any engine-wide Options.HeapInsertShards default; that
// default applies only when the option is absent. Ignored under
// WithAppendOnlyHeap, which needs a single tail.
func WithHeapInsertShards(n int) TableOption {
	return func(c *tableConfig) {
		if n < 1 {
			n = -1 // explicit "automatic", distinct from option-absent 0
		}
		c.heapInsertShards = n
	}
}

// Table is a heap-backed table plus its indexes.
type Table struct {
	engine *Engine
	name   string
	schema *tuple.Schema
	file   *heap.File
	cfg    tableConfig // resolved creation config (checkpoint manifest)

	mu      sync.RWMutex // nblb:lock table-mu
	indexes map[string]*Index
	rows    atomic.Int64

	// vers is the table's MVCC version store (mvcc.go). Rows with no
	// entry are visible to every snapshot — the empty map is the
	// pre-transactional state and costs nothing.
	vers versionStore
}

func newTable(e *Engine, name string, schema *tuple.Schema, opts ...TableOption) (*Table, error) {
	var cfg tableConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.heapInsertShards == 0 {
		cfg.heapInsertShards = e.heapShards
	}
	return buildTable(e, name, schema, cfg)
}

// buildTable constructs a table from an already-resolved config — the
// shared tail of user-driven creation and WAL/manifest replay.
func buildTable(e *Engine, name string, schema *tuple.Schema, cfg tableConfig) (*Table, error) {
	if schema == nil {
		return nil, fmt.Errorf("core: table %q needs a schema", name)
	}
	var hopts []heap.Option
	if cfg.appendOnly {
		hopts = append(hopts, heap.AppendOnly())
	}
	if cfg.heapFillFactor != 0 {
		hopts = append(hopts, heap.WithFillFactor(cfg.heapFillFactor))
	}
	if cfg.heapInsertShards > 0 {
		hopts = append(hopts, heap.WithInsertShards(cfg.heapInsertShards))
	}
	// A negative count (explicit "automatic") passes no option: the
	// heap's own default applies.
	f, err := heap.NewFile(e.pool, hopts...)
	if err != nil {
		return nil, fmt.Errorf("core: creating heap for %q: %w", name, err)
	}
	return &Table{
		engine:  e,
		name:    name,
		schema:  schema,
		file:    f,
		cfg:     cfg,
		indexes: make(map[string]*Index),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Heap exposes the underlying heap file (stats, partition experiments).
func (t *Table) Heap() *heap.File { return t.file }

// Rows returns the live row count.
func (t *Table) Rows() int64 { return t.rows.Load() }

// Indexes returns the table's indexes by name.
func (t *Table) Indexes() map[string]*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]*Index, len(t.indexes))
	for k, v := range t.indexes {
		out[k] = v
	}
	return out
}

// Index returns the named index, or an error.
func (t *Table) Index(name string) (*Index, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[name]
	if !ok {
		return nil, fmt.Errorf("core: table %q has no index %q", t.name, name)
	}
	return ix, nil
}

// Insert adds a row, maintaining all indexes, and returns its RID. It
// is a one-op Batch under the hood — multi-row ingest should build a
// Batch and call Apply, which amortizes the per-row descent and latch
// costs this wrapper pays in full.
//
// Insert is safe for concurrent use, and no stage of it serializes on
// a table-wide lock: the heap placement rides the heap file's sharded
// insert path (each inserting goroutine is affine to one of the heap's
// insert shards, see WithHeapInsertShards), and index maintenance rides
// the B+Tree's latch-crabbing write path, so parallel inserters contend
// per heap shard and per leaf page rather than per table. t.mu is only
// held shared, to pin the index set — it does not serialize writers
// against each other.
func (t *Table) Insert(row tuple.Row) (storage.RID, error) {
	var b Batch
	b.Insert(row)
	res, err := t.Apply(&b, WithResultRIDs())
	if err != nil {
		return storage.InvalidRID, err
	}
	return res.RIDs[0], nil
}

// Get fetches and decodes the row at rid.
func (t *Table) Get(rid storage.RID) (tuple.Row, error) {
	rec, err := t.file.Get(rid)
	if err != nil {
		return nil, err
	}
	row, _, err := tuple.Decode(t.schema, rec)
	return row, err
}

// Update replaces the row at rid with newRow, returning the row's RID
// afterwards (it changes when the row no longer fits its page). Index
// entries follow, and every cached index is notified so stale cache
// entries are invalidated via the predicate log.
//
// Update is safe for concurrent use against distinct RIDs. Concurrent
// updates of the same RID are last-writer-wins per structure (heap and
// each index order independently); callers needing read-modify-write
// atomicity on one row must serialize above this layer. Like Insert it
// is a one-op Batch; batch updates ride Apply.
func (t *Table) Update(rid storage.RID, newRow tuple.Row) (storage.RID, error) {
	var b Batch
	b.Update(rid, newRow)
	res, err := t.Apply(&b, WithResultRIDs())
	if err != nil {
		return storage.InvalidRID, err
	}
	return res.RIDs[0], nil
}

// Delete removes the row at rid, maintaining indexes and invalidating
// affected cache entries. Heap slot reuse makes invalidation mandatory:
// a future tuple could receive the same RID, and a stale cache entry
// keyed by that RID would otherwise serve the old tuple's bytes.
// Index entries go first, then the heap row (via a one-op Batch), so a
// concurrent index reader can never hold an entry whose heap row is
// already gone.
func (t *Table) Delete(rid storage.RID) error {
	var b Batch
	b.Delete(rid)
	_, err := t.Apply(&b)
	return err
}

// Relocate moves the row at rid by deleting and reinserting it — the
// paper's Section 3.1 clustering primitive ("relocates hot tuples by
// deleting then appending them to the end of the table" when the heap
// is append-only). Indexes are updated to the new RID and cached
// indexes invalidated (RID reuse hazard). Returns the new RID.
func (t *Table) Relocate(rid storage.RID) (storage.RID, error) {
	row, err := t.Get(rid)
	if err != nil {
		return storage.InvalidRID, fmt.Errorf("core: relocate of %v: %w", rid, err)
	}
	// Delete-then-insert as one batch, in order (WithSyncIndexes pins
	// it): the delete frees the slot before the insert places, and the
	// whole move rides Apply's pipeline — so it is WAL-logged like every
	// other mutation instead of bypassing the log.
	var b Batch
	b.Delete(rid)
	b.Insert(row)
	res, err := t.Apply(&b, WithSyncIndexes(), WithResultRIDs())
	if err != nil {
		return storage.InvalidRID, err
	}
	return res.RIDs[1], nil
}

// GetInto is Get decoding into dst when its capacity suffices, with
// buf as reusable scratch for the raw record; it returns the row and
// the grown scratch. Callers that thread both across calls fetch rows
// without per-row allocation (modulo string fields).
func (t *Table) GetInto(dst tuple.Row, buf []byte, rid storage.RID) (tuple.Row, []byte, error) {
	rec, err := t.file.GetInto(buf[:0], rid)
	if err != nil {
		return nil, buf, err
	}
	row, _, err := tuple.DecodeInto(dst, t.schema, rec)
	return row, rec[:0], err
}

// Scan iterates over all rows in heap order. The row passed to fn is
// only valid during the call (Clone to retain).
//
// Deprecated: Scan is a thin wrapper over Query; new code should use
// Query, which adds projection, limits, reverse order, and index-order
// iteration behind the same cursor.
func (t *Table) Scan(fn func(rid storage.RID, row tuple.Row) bool) error {
	c, err := t.Query()
	if err != nil {
		return err
	}
	defer c.Close()
	for c.Next() {
		if !fn(c.RID(), c.Row()) {
			return nil
		}
	}
	return c.Err()
}
