package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// intSchema is all fixed-width fields so cache-resident scans can be
// asserted allocation-free (string decoding inherently allocates).
func intSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "a", Kind: tuple.KindInt64},
		tuple.Field{Name: "b", Kind: tuple.KindInt32},
		tuple.Field{Name: "blob", Kind: tuple.KindString},
	)
}

func intRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i)),
		tuple.Int64(int64(i * 3)),
		tuple.Int32(int32(i % 97)),
		tuple.String(fmt.Sprintf("padding-padding-%06d", i)),
	}
}

func newQueryFixture(t *testing.T, rows int, cached bool) (*Engine, *Table, *Index) {
	t.Helper()
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 2048})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	tb, err := e.CreateTable("t", intSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(intRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var opts []IndexOption
	if cached {
		// A low bulk-load fill factor leaves enough leaf free space to
		// cache every key's payload, so warm scans are fully resident.
		opts = append(opts, WithCache("a", "b"), WithFillFactor(0.4))
	}
	ix, err := tb.CreateIndex("by_id", []string{"id"}, opts...)
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return e, tb, ix
}

func TestTableQueryHeapOrder(t *testing.T) {
	_, tb, _ := newQueryFixture(t, 500, false)
	cur, err := tb.Query()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	seen := 0
	for cur.Next() {
		if cur.RID() == storage.InvalidRID {
			t.Fatal("invalid RID from heap scan")
		}
		if got := len(cur.Row()); got != 4 {
			t.Fatalf("row width %d", got)
		}
		seen++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if seen != 500 {
		t.Fatalf("scanned %d rows, want 500", seen)
	}
	// Reverse heap order sees the same multiset.
	cur, _ = tb.Query(WithReverse())
	defer cur.Close()
	rev := 0
	for cur.Next() {
		rev++
	}
	if rev != 500 {
		t.Fatalf("reverse scanned %d rows", rev)
	}
}

func TestTableQueryProjectionAndLimit(t *testing.T) {
	_, tb, _ := newQueryFixture(t, 200, false)
	cur, err := tb.Query(WithProjection("b", "id"), WithLimit(25))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	n := 0
	for cur.Next() {
		row := cur.Row()
		if len(row) != 2 || row[0].Kind != tuple.KindInt32 || row[1].Kind != tuple.KindInt64 {
			t.Fatalf("bad projected row: %v", row)
		}
		n++
	}
	if n != 25 {
		t.Fatalf("limit served %d rows, want 25", n)
	}
	if _, err := tb.Query(WithProjection("nope")); err == nil {
		t.Fatal("unknown projection field must error")
	}
	if _, err := tb.Query(WithKeyRange([]tuple.Value{tuple.Int64(1)}, nil)); err == nil {
		t.Fatal("key bounds without an index must error")
	}
}

func TestIndexQueryRangePrefixReverse(t *testing.T) {
	_, tb, _ := newQueryFixture(t, 1000, false)
	lo, hi := []tuple.Value{tuple.Int64(100)}, []tuple.Value{tuple.Int64(200)}
	cur, err := tb.Query(WithIndex("by_id"), WithKeyRange(lo, hi))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	want := int64(100)
	for cur.Next() {
		if got := cur.Row()[0].Int; got != want {
			t.Fatalf("range scan: got id %d, want %d", got, want)
		}
		want++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if want != 200 {
		t.Fatalf("range scan ended at %d, want 200", want)
	}
	// Reverse range.
	cur, err = tb.Query(WithIndex("by_id"), WithKeyRange(lo, hi), WithReverse())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	want = 199
	for cur.Next() {
		if got := cur.Row()[0].Int; got != want {
			t.Fatalf("reverse range: got id %d, want %d", got, want)
		}
		want--
	}
	if want != 99 {
		t.Fatalf("reverse range ended at %d, want 99", want)
	}
	// Prefix = point on a unique index.
	ix, _ := tb.Index("by_id")
	cur, err = ix.Query(WithPrefix(tuple.Int64(42)))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	if !cur.Next() || cur.Row()[0].Int != 42 || cur.Next() {
		t.Fatal("prefix query on unique index must yield exactly one row")
	}
	if _, err := ix.Query(WithPrefix(tuple.Int64(1)), WithKeyRange(lo, hi)); err == nil {
		t.Fatal("prefix + range must error")
	}
	if _, err := ix.Query(WithIndex("by_id")); err == nil {
		t.Fatal("WithIndex on Index.Query must error")
	}
}

func TestIndexQueryCacheFirstVsHeapOnly(t *testing.T) {
	_, tb, ix := newQueryFixture(t, 800, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	proj := []string{"id", "a", "b"} // key + cached fields: coverable
	cur, err := tb.Query(WithIndex("by_id"), WithProjection(proj...))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	for cur.Next() {
		row := cur.Row()
		if row[1].Int != row[0].Int*3 || int64(row[2].Int) != row[0].Int%97 {
			t.Fatalf("cache-path row wrong: %v", row)
		}
	}
	st := cur.Stats()
	if st.Rows != 800 {
		t.Fatalf("served %d rows", st.Rows)
	}
	if st.CacheHits != st.Rows {
		t.Errorf("warm cache-first scan: %d/%d cache hits, want all", st.CacheHits, st.Rows)
	}
	if st.CacheHits+st.HeapReads != st.Rows {
		t.Errorf("hits %d + heap %d ≠ rows %d", st.CacheHits, st.HeapReads, st.Rows)
	}
	// HeapOnly must bypass the cache entirely.
	cur, err = ix.Query(WithProjection(proj...), WithCachePolicy(HeapOnly))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if st := cur.Stats(); st.CacheHits != 0 || st.HeapReads != 800 {
		t.Errorf("heap-only scan: hits=%d heap=%d", st.CacheHits, st.HeapReads)
	}
	// Uncoverable projection falls back to the heap per row.
	cur, err = ix.Query(WithProjection("id", "blob"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if st := cur.Stats(); st.CacheHits != 0 || st.HeapReads != 800 {
		t.Errorf("uncoverable scan: hits=%d heap=%d", st.CacheHits, st.HeapReads)
	}
}

func TestCursorLifecyclePinsAndDoubleClose(t *testing.T) {
	e, tb, _ := newQueryFixture(t, 600, false)
	cur, err := tb.Query(WithIndex("by_id"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := 0; i < 10; i++ {
		if !cur.Next() {
			t.Fatal("cursor ended early")
		}
	}
	if pins := e.Pool().PinnedFrames(); pins != 1 {
		t.Fatalf("mid-scan pins = %d, want 1 (the cursor's leaf)", pins)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if pins := e.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("post-Close pins = %d, want 0", pins)
	}
	if err := cur.Close(); err != nil { // double Close is a no-op
		t.Fatalf("second Close: %v", err)
	}
	if cur.Next() {
		t.Fatal("Next after Close must return false")
	}
	// Exhaustion releases the pin without an explicit Close.
	cur, _ = tb.Query(WithIndex("by_id"))
	for cur.Next() {
	}
	if pins := e.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("post-exhaustion pins = %d, want 0", pins)
	}
}

func TestCursorAllRangeFunc(t *testing.T) {
	_, tb, _ := newQueryFixture(t, 300, false)
	cur, err := tb.Query(WithIndex("by_id"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := int64(0)
	for rid, row := range cur.All() {
		if rid == storage.InvalidRID || row[0].Int != want {
			t.Fatalf("All(): rid=%v id=%d want %d", rid, row[0].Int, want)
		}
		want++
		if want == 100 {
			break // early break must close the cursor
		}
	}
	if want != 100 {
		t.Fatalf("All() yielded %d rows before break", want)
	}
	if pins := tb.engine.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("pins after early break = %d, want 0", pins)
	}
}

// TestQueryScanZeroAllocsPerRow pins the acceptance criterion: on the
// cache-resident path (coverable projection, warm cache) iteration
// performs zero allocations per row once cursor scratch has grown.
func TestQueryScanZeroAllocsPerRow(t *testing.T) {
	const rows = 2000
	_, tb, ix := newQueryFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	proj := []string{"id", "a", "b"}
	scan := func() (served, cacheHits int64) {
		cur, err := tb.Query(WithIndex("by_id"), WithProjection(proj...))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		defer cur.Close()
		for cur.Next() {
		}
		st := cur.Stats()
		return st.Rows, st.CacheHits
	}
	scan() // warm sync.Pools and plan cache
	allocs := testing.AllocsPerRun(5, func() {
		if n, _ := scan(); n != rows {
			t.Fatalf("scan served %d rows", n)
		}
	})
	// The whole scan may allocate a fixed handful (cursor, driver,
	// scratch growth) but nothing per row.
	if perRow := allocs / rows; perRow >= 1 {
		t.Errorf("scan allocations: %.0f per %d-row scan (%.2f/row), want <1/row", allocs, rows, perRow)
	}
	if allocs > 32 {
		t.Errorf("scan allocations: %.0f per scan, want a fixed handful", allocs)
	}
	if _, hits := scan(); hits != rows {
		t.Fatalf("alloc test must run fully cache-resident, got %d/%d hits", hits, rows)
	}
}

// TestQueryConcurrentInserts scans while writers insert: run under
// -race in CI. The cursor must neither skip pre-existing keys nor stall
// writers (the pre-cursor Scan held the tree lock for its duration).
func TestQueryConcurrentInserts(t *testing.T) {
	_, tb, _ := newQueryFixture(t, 2000, false)
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tb.Insert(intRow(10000 + w*100000 + i)); err != nil {
					errCh <- err
					return
				}
				i++
			}
		}(w)
	}
	for round := 0; round < 10; round++ {
		cur, err := tb.Query(WithIndex("by_id"),
			WithKeyRange(nil, []tuple.Value{tuple.Int64(2000)}))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		want := int64(0)
		for cur.Next() {
			if got := cur.Row()[0].Int; got != want {
				errCh <- fmt.Errorf("round %d: got id %d, want %d", round, got, want)
				break
			}
			want++
		}
		if err := cur.Close(); err != nil {
			errCh <- err
		}
		if want != 2000 {
			errCh <- fmt.Errorf("round %d: served %d stable keys, want 2000", round, want)
		}
		if len(errCh) > 0 {
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestLookupAllStillWorks(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("multi", tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.KindInt64},
		tuple.Field{Name: "v", Kind: tuple.KindInt64},
	))
	for i := 0; i < 30; i++ {
		tb.Insert(tuple.Row{tuple.Int64(int64(i % 3)), tuple.Int64(int64(i))})
	}
	ix, err := tb.CreateIndex("by_k", []string{"k"}, NonUnique())
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rows, err := ix.LookupAll(tuple.Int64(1))
	if err != nil {
		t.Fatalf("LookupAll: %v", err)
	}
	if len(rows) != 10 {
		t.Fatalf("LookupAll returned %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r[0].Int != 1 || r[1].Int%3 != 1 {
			t.Fatalf("LookupAll wrong row: %v", r)
		}
	}
}
