package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/idxcache"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// IndexOption configures index creation.
type IndexOption func(*indexConfig)

type indexConfig struct {
	cachedFields []string
	bucketN      int
	predLogLimit int
	cacheSeed    int64
	fillFactor   float64
	nonUnique    bool
}

// WithCache enables the Section 2.1 index cache on this index, caching
// the named non-key fields in leaf free space. All cached fields must
// be fixed width, and an index with a cache must be unique.
func WithCache(fields ...string) IndexOption {
	return func(c *indexConfig) { c.cachedFields = fields }
}

// WithCacheBucket sets the swap-policy bucket size N (default 4).
func WithCacheBucket(n int) IndexOption {
	return func(c *indexConfig) { c.bucketN = n }
}

// WithPredLogLimit sets the predicate-log escalation threshold.
func WithPredLogLimit(n int) IndexOption {
	return func(c *indexConfig) { c.predLogLimit = n }
}

// WithCacheSeed fixes the cache's placement randomness.
func WithCacheSeed(seed int64) IndexOption {
	return func(c *indexConfig) { c.cacheSeed = seed }
}

// WithFillFactor sets the bulk-build fill factor used when the index is
// created over an already-populated table (default 0.68, the canonical
// B+Tree steady state the paper cites).
func WithFillFactor(ff float64) IndexOption {
	return func(c *indexConfig) { c.fillFactor = ff }
}

// NonUnique permits duplicate keys (entries are disambiguated by RID).
// Non-unique indexes cannot carry a cache.
func NonUnique() IndexOption {
	return func(c *indexConfig) { c.nonUnique = true }
}

// Index is a B+Tree over one or more fields of a table, optionally with
// an index cache living in its leaves' free space.
type Index struct {
	table     *Table
	name      string
	keyFields []int
	unique    bool
	cfg       indexConfig // resolved creation config (checkpoint manifest)
	tree      *btree.Tree

	cache        *idxcache.Cache
	cachedFields []int
	payloadWidth int
	// payloadOff[i] is the byte offset of cachedFields[i]'s value within
	// the cache payload (after the null-bitmap byte).
	payloadOff []int

	// Projection-plan cache: an immutable slice of resolved plans behind
	// an atomic pointer, grown copy-on-write. Point lookups resolve
	// their projection with a lock-free, allocation-free scan; the slice
	// is tiny in practice (a workload uses a handful of projections).
	projPlans atomic.Pointer[[]projPlan]
	projAll   *projPlan // identity projection for nil, built at creation
}

// projPlan memoizes one resolved projection, including the assembly
// recipe for answering it straight from a leaf (key fields + cached
// payload). Everything is immutable after publication.
type projPlan struct {
	names []string
	idx   []int // schema positions, one per projected field
	// coverable reports whether every projected field is a key field or
	// a cached field — the precondition for a cache hit. Checked once at
	// plan build instead of being rediscovered on every lookup.
	coverable bool
	// steps drive assembleInto when coverable: one source per projected
	// field.
	steps []asmStep
}

// asmStep says where projected field i comes from on the cache-hit
// path.
type asmStep struct {
	fromKey bool
	src     int // keyVals index or cachedFields index
}

// buildProjPlan resolves idx (schema positions) into a plan. Callers
// pass an immutable names slice.
func (ix *Index) buildProjPlan(names []string, idx []int) projPlan {
	p := projPlan{names: names, idx: idx, coverable: true}
	p.steps = make([]asmStep, len(idx))
	for i, pos := range idx {
		if ki := indexOf(ix.keyFields, pos); ki >= 0 {
			p.steps[i] = asmStep{fromKey: true, src: ki}
			continue
		}
		if ci := indexOf(ix.cachedFields, pos); ci >= 0 {
			p.steps[i] = asmStep{src: ci}
			continue
		}
		p.coverable = false
		p.steps = nil
		break
	}
	return p
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// maxProjPlans bounds the plan cache; projections beyond it are
// resolved per call instead of cached (no workload legitimately uses
// this many distinct projections against one index).
const maxProjPlans = 64

// CreateIndex builds an index over the named fields. If the table
// already holds rows, the index is bulk-loaded at the configured fill
// factor; otherwise it starts empty and fills via normal inserts.
func (t *Table) CreateIndex(name string, fields []string, opts ...IndexOption) (*Index, error) {
	cfg := indexConfig{fillFactor: 0.68, bucketN: 4, predLogLimit: 1024, cacheSeed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if name == "" {
		return nil, fmt.Errorf("core: index name must not be empty")
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: index %q needs at least one key field", name)
	}
	e := t.engine
	if e.wal != nil {
		e.commitGate.RLock()
		defer e.commitGate.RUnlock()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[name]; exists {
		return nil, fmt.Errorf("core: index %q already exists on %q", name, t.name)
	}
	ix, err := t.newIndexShell(name, fields, cfg)
	if err != nil {
		return nil, err
	}
	if err := ix.build(cfg.fillFactor); err != nil {
		return nil, err
	}
	t.indexes[name] = ix
	if e.wal != nil {
		// The record captures the full config; replay rebuilds the tree
		// from the replayed table state, which build() saw here.
		rec := ddlCreateIndex{
			Table:        t.name,
			Name:         name,
			KeyFields:    fields,
			NonUnique:    cfg.nonUnique,
			CachedFields: cfg.cachedFields,
			BucketN:      cfg.bucketN,
			PredLogLimit: cfg.predLogLimit,
			CacheSeed:    cfg.cacheSeed,
			FillFactor:   cfg.fillFactor,
		}
		lsn, err := e.wal.Append(recCreateIndex, encodeJSON(rec))
		if err != nil {
			delete(t.indexes, name)
			return nil, err
		}
		if err := e.walCommit(lsn); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// newIndexShell resolves and validates an index's configuration —
// everything about creation except building the tree and registering
// it. Shared by CreateIndex, WAL replay, and manifest reopen.
func (t *Table) newIndexShell(name string, fields []string, cfg indexConfig) (*Index, error) {
	ix := &Index{table: t, name: name, unique: !cfg.nonUnique, cfg: cfg}
	for _, f := range fields {
		pos := t.schema.Index(f)
		if pos < 0 {
			return nil, fmt.Errorf("core: index %q: no field %q in %s", name, f, t.schema)
		}
		ix.keyFields = append(ix.keyFields, pos)
	}
	if len(cfg.cachedFields) > 0 {
		if cfg.nonUnique {
			return nil, fmt.Errorf("core: index %q: cache requires a unique index", name)
		}
		if len(cfg.cachedFields) > 8 {
			return nil, fmt.Errorf("core: index %q: at most 8 cached fields (null bitmap is one byte)", name)
		}
		width := 1 // null bitmap byte
		for _, f := range cfg.cachedFields {
			pos := t.schema.Index(f)
			if pos < 0 {
				return nil, fmt.Errorf("core: index %q: no cached field %q", name, f)
			}
			w := fixedValueWidth(t.schema.Field(pos))
			if w < 0 {
				return nil, fmt.Errorf("core: index %q: cached field %q is not fixed width", name, f)
			}
			ix.cachedFields = append(ix.cachedFields, pos)
			ix.payloadOff = append(ix.payloadOff, width)
			width += w
		}
		ix.payloadWidth = width
		cache, err := idxcache.New(idxcache.Config{
			PayloadSize:  width,
			BucketN:      cfg.bucketN,
			PredLogLimit: cfg.predLogLimit,
			Seed:         cfg.cacheSeed,
		})
		if err != nil {
			return nil, err
		}
		ix.cache = cache
	}
	allIdx := make([]int, t.schema.NumFields())
	for i := range allIdx {
		allIdx[i] = i
	}
	allPlan := ix.buildProjPlan(nil, allIdx)
	ix.projAll = &allPlan
	return ix, nil
}

// build constructs the tree: bulk-loaded from a sorted scan when the
// table has rows, empty otherwise.
func (ix *Index) build(ff float64) error {
	t := ix.table
	if t.rows.Load() == 0 {
		tree, err := btree.New(t.engine.pool)
		if err != nil {
			return err
		}
		ix.tree = tree
		return nil
	}
	type entry struct {
		key []byte
		rid uint64
	}
	var entries []entry
	cur, err := t.Query()
	if err != nil {
		return err
	}
	defer cur.Close()
	for cur.Next() {
		key, kerr := ix.entryKey(cur.Row(), cur.RID())
		if kerr != nil {
			return kerr
		}
		entries = append(entries, entry{key: key, rid: cur.RID().Pack()})
	}
	if err := cur.Err(); err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].key, entries[j].key) < 0
	})
	for i := 1; i < len(entries); i++ {
		if bytes.Equal(entries[i-1].key, entries[i].key) {
			return fmt.Errorf("core: index %q: duplicate key in unique index", ix.name)
		}
	}
	i := 0
	tree, err := btree.BulkLoad(t.engine.pool, ff, func() ([]byte, uint64, bool) {
		if i >= len(entries) {
			return nil, 0, false
		}
		e := entries[i]
		i++
		return e.key, e.rid, true
	})
	if err != nil {
		return err
	}
	ix.tree = tree
	return nil
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Tree exposes the underlying B+Tree (stats, experiments).
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Cache exposes the index cache, or nil when caching is disabled.
func (ix *Index) Cache() *idxcache.Cache { return ix.cache }

// Unique reports whether the index enforces unique keys.
func (ix *Index) Unique() bool { return ix.unique }

// KeyFieldNames returns the names of the key fields in order.
func (ix *Index) KeyFieldNames() []string {
	names := make([]string, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		names[i] = ix.table.schema.Field(pos).Name
	}
	return names
}

// CachedFieldNames returns the names of the cached fields in order.
func (ix *Index) CachedFieldNames() []string {
	names := make([]string, len(ix.cachedFields))
	for i, pos := range ix.cachedFields {
		names[i] = ix.table.schema.Field(pos).Name
	}
	return names
}

// entryKey builds the stored key for a row: the encoded key fields,
// plus the packed RID for non-unique indexes (disambiguation suffix).
func (ix *Index) entryKey(row tuple.Row, rid storage.RID) ([]byte, error) {
	vals := make([]tuple.Value, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		vals[i] = row[pos]
	}
	key, err := tuple.EncodeKey(nil, vals...)
	if err != nil {
		return nil, err
	}
	if !ix.unique {
		key = appendRIDSuffix(key, rid)
	}
	return key, nil
}

// searchKey builds the lookup key from caller-supplied key values.
func (ix *Index) searchKey(keyVals []tuple.Value) ([]byte, error) {
	return ix.searchKeyInto(nil, keyVals)
}

// searchKeyInto is searchKey appending into dst — the hot path passes a
// pooled scratch buffer so key encoding is allocation-free.
func (ix *Index) searchKeyInto(dst []byte, keyVals []tuple.Value) ([]byte, error) {
	if len(keyVals) != len(ix.keyFields) {
		return nil, fmt.Errorf("core: index %q wants %d key values, got %d", ix.name, len(ix.keyFields), len(keyVals))
	}
	for i, v := range keyVals {
		want := ix.table.schema.Field(ix.keyFields[i]).Kind
		if v.Kind != want {
			return nil, fmt.Errorf("core: index %q key field %d: kind %v, want %v", ix.name, i, v.Kind, want)
		}
	}
	return tuple.EncodeKey(dst, keyVals...)
}

func appendRIDSuffix(key []byte, rid storage.RID) []byte {
	packed := rid.Pack()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(packed >> (56 - 8*i))
	}
	return append(key, buf[:]...)
}

// insertEntry adds the row's index entry. For cached indexes there is
// nothing else to do: entries are cached lazily on lookup misses.
// Effects are logged to wb as they land. On a unique index the insert
// is if-absent: a duplicate key leaves the survivor's entry untouched
// (only the duplicate's heap row is orphaned) and nothing is logged,
// so replay reproduces exactly the tree the error left behind.
func (ix *Index) insertEntry(row tuple.Row, rid storage.RID, wb *walBatch) error {
	key, err := ix.entryKey(row, rid)
	if err != nil {
		return err
	}
	if ix.unique {
		inserted, err := ix.tree.InsertIfAbsent(key, rid.Pack())
		if err != nil {
			return err
		}
		if !inserted {
			return fmt.Errorf("core: index %q: duplicate key", ix.name)
		}
	} else if _, err := ix.tree.Insert(key, rid.Pack()); err != nil {
		return err
	}
	wb.idx(ix.name, btree.RunEntry{Key: key, Value: rid.Pack(), Op: btree.RunUpsert})
	return nil
}

// deleteEntry removes the row's index entry and invalidates any cache
// entry for it via the predicate log.
func (ix *Index) deleteEntry(row tuple.Row, rid storage.RID, wb *walBatch) error {
	key, err := ix.entryKey(row, rid)
	if err != nil {
		return err
	}
	if _, err := ix.tree.Delete(key); err != nil {
		return err
	}
	wb.idx(ix.name, btree.RunEntry{Key: key, Op: btree.RunDelete})
	if ix.cache != nil {
		ix.cache.NotifyUpdate(key)
	}
	return nil
}

// updateEntry maintains the index across a row update. Each tree effect
// logs as its own single-entry run (ApplyRun wants sorted runs, and
// oldKey/newKey have no order guarantee).
func (ix *Index) updateEntry(oldRow, newRow tuple.Row, oldRID, newRID storage.RID, moved bool, wb *walBatch) error {
	oldKey, err := ix.entryKey(oldRow, oldRID)
	if err != nil {
		return err
	}
	newKey, err := ix.entryKey(newRow, newRID)
	if err != nil {
		return err
	}
	keyChanged := string(oldKey) != string(newKey)
	if keyChanged {
		if _, err := ix.tree.Delete(oldKey); err != nil {
			return err
		}
		wb.idx(ix.name, btree.RunEntry{Key: oldKey, Op: btree.RunDelete})
		if _, err := ix.tree.Insert(newKey, newRID.Pack()); err != nil {
			return err
		}
		wb.idx(ix.name, btree.RunEntry{Key: newKey, Value: newRID.Pack(), Op: btree.RunUpsert})
	} else if moved {
		if _, err := ix.tree.Insert(newKey, newRID.Pack()); err != nil { // upsert new RID
			return err
		}
		wb.idx(ix.name, btree.RunEntry{Key: newKey, Value: newRID.Pack(), Op: btree.RunUpsert})
	}
	if ix.cache == nil {
		return nil
	}
	// Invalidate when the entry's cached payload could be stale: the row
	// moved (RID reuse hazard), the key changed (entry now lives under a
	// dead key), or a cached field changed value.
	if moved || keyChanged || ix.cachedFieldsChanged(oldRow, newRow) {
		ix.cache.NotifyUpdate(oldKey)
		if keyChanged {
			ix.cache.NotifyUpdate(newKey)
		}
	}
	return nil
}

func (ix *Index) cachedFieldsChanged(oldRow, newRow tuple.Row) bool {
	for _, pos := range ix.cachedFields {
		if !oldRow[pos].Equal(newRow[pos]) {
			return true
		}
	}
	return false
}

// fixedValueWidth returns the bytes needed to cache a value of the
// field, or -1 for variable-width fields.
func fixedValueWidth(f tuple.Field) int {
	if f.Kind == tuple.KindChar {
		return f.Size
	}
	return f.Kind.FixedSize()
}
