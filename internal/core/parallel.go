package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// MergeMode selects how a parallel query's segment streams combine.
type MergeMode int

const (
	// MergeOrdered serves rows in global key order by running a loser
	// tree over the segment heads. Throughput is bounded by the merge
	// (one consumer goroutine), but the cursor contract is identical to
	// a serial index scan.
	MergeOrdered MergeMode = iota
	// MergeUnordered interleaves blocks as workers finish them — no
	// cross-segment ordering, maximum scan throughput. Rows within one
	// segment still arrive in key order.
	MergeUnordered
)

// blockRows is the vectorization width: entries fetched per leaf-latch
// acquisition and rows shipped per channel operation. 256 rows keeps a
// block's value slab around 10KB for narrow projections — big enough to
// amortize latch and channel costs, small enough to stay cache-warm.
const blockRows = 256

// segmentsPerWorker oversubscribes unordered plans so the dynamic
// claim evens out segment-size skew.
const segmentsPerWorker = 4

// RowBlock is a vectorized batch of assembled rows shipped from a scan
// worker to the consuming cursor: a columnar-ish slab of n*width
// values (row i is a 3-index sub-slice, so rows can't append over each
// other), the encoded keys delimited by offsets, RIDs, and the stats
// delta attributable to the block. Blocks are pooled; a consumed block
// is recycled as soon as the cursor steps past its last row.
type RowBlock struct {
	width int
	vals  []tuple.Value
	keys  []byte
	koffs []int32
	rids  []storage.RID
	n     int
	seg   int
	stats QueryStats
}

func (b *RowBlock) reset(width, seg int) {
	b.width = width
	b.seg = seg
	b.n = 0
	b.vals = b.vals[:0]
	b.keys = b.keys[:0]
	b.koffs = b.koffs[:0]
	b.rids = b.rids[:0]
	b.stats = QueryStats{}
}

// nextRow returns the slab slice for the next (uncommitted) row. A row
// rejected by a filter is simply never committed; the same slice is
// handed out again.
func (b *RowBlock) nextRow() tuple.Row {
	lo := b.n * b.width
	hi := lo + b.width
	for len(b.vals) < hi {
		b.vals = append(b.vals, tuple.Value{})
	}
	return b.vals[lo:hi:hi]
}

// commit finalizes the row last handed out by nextRow.
func (b *RowBlock) commit(key []byte, rid storage.RID) {
	if len(b.koffs) == 0 {
		b.koffs = append(b.koffs, 0)
	}
	b.keys = append(b.keys, key...)
	b.koffs = append(b.koffs, int32(len(b.keys)))
	b.rids = append(b.rids, rid)
	b.n++
}

func (b *RowBlock) row(i int) tuple.Row {
	lo := i * b.width
	hi := lo + b.width
	return b.vals[lo:hi:hi]
}

func (b *RowBlock) key(i int) []byte { return b.keys[b.koffs[i]:b.koffs[i+1]] }

var rowBlockPool = sync.Pool{New: func() any { return new(RowBlock) }}

// parallelQuery plans the range into per-subtree segments and opens a
// cursor over the merged worker streams.
func (ix *Index) parallelQuery(cfg queryConfig, plan *projPlan, fp *filterPlan, start, end []byte) (*Cursor, error) {
	if cfg.merge != MergeOrdered && cfg.merge != MergeUnordered {
		return nil, fmt.Errorf("core: unknown merge mode %d", int(cfg.merge))
	}
	n := cfg.parallel
	target := n
	if cfg.merge == MergeUnordered {
		target = n * segmentsPerWorker
	}
	segs, err := ix.tree.PlanSegments(start, end, target)
	if err != nil {
		return nil, err
	}
	p := &parallelSource{
		ix:     ix,
		plan:   plan,
		fp:     fp,
		policy: cfg.policy,
		merge:  cfg.merge,
		segs:   segs,
		width:  len(plan.idx),
		snap:   cfg.snapshotTS(),
		cancel: make(chan struct{}),
	}
	p.keyKinds = make([]tuple.Kind, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		p.keyKinds[i] = ix.table.schema.Field(pos).Kind
	}
	p.segStats = make([]QueryStats, len(segs))
	p.run(n)
	return &Cursor{src: p, limit: cfg.limit}, nil
}

// parallelSource fans a segmented scan out to workers and feeds the
// cursor from their block streams. Lock order note for the workers: a
// worker holds at most one leaf latch at a time (inside NextBlock),
// takes heap-page latches only after releasing none — the established
// index-leaf → heap-page order of Lookup applies to the in-visitor
// cache probe, and the heap fallback here runs with no leaf latch held
// at all (entries were copied out of the leaf first). Channel sends
// never happen under any latch.
type parallelSource struct {
	ix       *Index
	plan     *projPlan
	fp       *filterPlan
	policy   CachePolicy
	merge    MergeMode
	segs     []btree.Segment
	width    int
	keyKinds []tuple.Kind
	snap     uint64 // read timestamp (snapLatest outside transactions)

	cancel    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	errMu sync.Mutex
	err   error

	statsMu  sync.Mutex
	segStats []QueryStats

	// Consumer-owned state (step/close run on the cursor's goroutine).
	pending QueryStats
	out     chan *RowBlock // unordered fan-in
	cur     *RowBlock
	pos     int
	lt      *loserTree // ordered merge
	chans   []chan *RowBlock
}

// run spawns the workers. Ordered mode runs one dedicated worker per
// segment (the plan targeted n segments), each with its own channel —
// a single producer per stream means no claim/queue interleaving can
// starve the merge's wait on any one head. Unordered mode oversubscribes
// the plan and lets n workers claim segments dynamically into one
// fan-in channel.
func (p *parallelSource) run(n int) {
	if p.merge == MergeOrdered {
		p.chans = make([]chan *RowBlock, len(p.segs))
		for si := range p.segs {
			p.chans[si] = make(chan *RowBlock, 2)
		}
		for si := range p.segs {
			p.wg.Add(1)
			go func(si int) {
				defer p.wg.Done()
				defer close(p.chans[si])
				w := p.newWorker()
				if err := w.scanSegment(si, func(b *RowBlock) bool { return p.send(p.chans[si], b) }); err != nil {
					p.setErr(err)
				}
			}(si)
		}
		p.lt = newLoserTree(p, p.chans)
		return
	}
	if n > len(p.segs) {
		n = len(p.segs)
	}
	p.out = make(chan *RowBlock, 2*n)
	var next atomic.Int32
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			w := p.newWorker()
			for {
				si := int(next.Add(1)) - 1
				if si >= len(p.segs) {
					return
				}
				select {
				case <-p.cancel:
					return
				default:
				}
				if err := w.scanSegment(si, func(b *RowBlock) bool { return p.send(p.out, b) }); err != nil {
					p.setErr(err)
					return
				}
			}
		}()
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
}

func (p *parallelSource) send(ch chan *RowBlock, b *RowBlock) bool {
	select {
	case ch <- b:
		return true
	case <-p.cancel:
		p.recycle(b)
		return false
	}
}

func (p *parallelSource) setErr(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *parallelSource) firstErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

func (p *parallelSource) getBlock(si int) *RowBlock {
	b := rowBlockPool.Get().(*RowBlock)
	b.reset(p.width, si)
	return b
}

func (p *parallelSource) recycle(b *RowBlock) { rowBlockPool.Put(b) }

// takeStats folds a received block's delta into the consumer's pending
// stats. Rows is excluded — Cursor.Next counts served rows itself.
func (p *parallelSource) takeStats(b *RowBlock) {
	p.pending.CacheHits += b.stats.CacheHits
	p.pending.HeapReads += b.stats.HeapReads
	p.pending.LeafFetches += b.stats.LeafFetches
}

func (p *parallelSource) flushPending(c *Cursor) {
	c.stats.CacheHits += p.pending.CacheHits
	c.stats.HeapReads += p.pending.HeapReads
	c.stats.LeafFetches += p.pending.LeafFetches
	p.pending = QueryStats{}
}

func (p *parallelSource) addSegStats(si int, d QueryStats) {
	p.statsMu.Lock()
	p.segStats[si].Add(d)
	p.statsMu.Unlock()
}

func (p *parallelSource) segmentStats() []QueryStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	out := make([]QueryStats, len(p.segStats))
	copy(out, p.segStats)
	return out
}

func (p *parallelSource) step(c *Cursor) bool {
	if p.merge == MergeOrdered {
		s := p.lt.next()
		p.flushPending(c)
		if s < 0 {
			if err := p.firstErr(); err != nil {
				c.err = err
			}
			return false
		}
		st := &p.lt.streams[s]
		c.row = st.blk.row(st.pos)
		c.key = st.blk.key(st.pos)
		c.rid = st.blk.rids[st.pos]
		return true
	}
	if p.cur != nil {
		p.pos++
		if p.pos >= p.cur.n {
			p.recycle(p.cur)
			p.cur = nil
		}
	}
	for p.cur == nil {
		blk, ok := <-p.out
		if !ok {
			if err := p.firstErr(); err != nil {
				c.err = err
			}
			return false
		}
		p.takeStats(blk)
		p.flushPending(c)
		if blk.n == 0 {
			p.recycle(blk)
			continue
		}
		p.cur, p.pos = blk, 0
	}
	c.row = p.cur.row(p.pos)
	c.key = p.cur.key(p.pos)
	c.rid = p.cur.rids[p.pos]
	return true
}

// close cancels the workers and waits for them to exit. Blocks still
// queued in channels are dropped to the GC — workers blocked on a send
// observe the cancel and return.
func (p *parallelSource) close() {
	p.closeOnce.Do(func() { close(p.cancel) })
	p.wg.Wait()
}

// --- segment worker ------------------------------------------------------

// segWorker is one worker's reusable scratch for scanning segments:
// the entry block filled under the leaf latch, the per-entry cache
// captures aligned with it (hit flags plus a payload slab — the entry
// visitor fires under the latch, everything downstream runs without
// it), and decode buffers.
type segWorker struct {
	p        *parallelSource
	useCache bool
	needKey  bool
	eb       btree.EntryBlock
	hits     []bool
	payloads []byte
	poffs    []int32
	keyVals  []tuple.Value
	heapRow  tuple.Row
	heapBuf  []byte
}

func (p *parallelSource) newWorker() *segWorker {
	w := &segWorker{p: p}
	w.useCache = p.ix.useScanCache(p.policy, p.plan, p.fp)
	w.needKey = (w.useCache && p.plan.coverable) || (p.fp != nil && len(p.fp.key) > 0)
	return w
}

// visit captures the cache probe for one served entry. Runs under the
// shared leaf latch, aligned one-to-one with the entries NextBlock
// pushes.
func (w *segWorker) visit(l *btree.Leaf, pos int) {
	hit := false
	if w.p.ix.cache.Prepare(l) {
		if pl, ok := w.p.ix.cache.LookupInto(w.payloads, l, l.ValueAt(pos)); ok {
			w.payloads = pl
			hit = true
		}
	}
	if len(w.poffs) == 0 {
		w.poffs = append(w.poffs, 0)
	}
	w.poffs = append(w.poffs, int32(len(w.payloads)))
	w.hits = append(w.hits, hit)
}

func (w *segWorker) resetCaptures() {
	w.hits = w.hits[:0]
	w.payloads = w.payloads[:0]
	w.poffs = w.poffs[:0]
}

// scanSegment streams the segment's rows as blocks through send, which
// returns false when the query was cancelled. Stats deltas are folded
// into the per-segment accounting whether or not the block ships.
func (w *segWorker) scanSegment(si int, send func(*RowBlock) bool) error {
	p := w.p
	seg := p.segs[si]
	var bopts []btree.CursorOption
	if w.useCache {
		bopts = append(bopts, btree.WithEntryVisitor(w.visit))
	}
	bt := p.ix.tree.NewCursor(seg.Lo, seg.Hi, bopts...)
	defer bt.Close()
	var prevFetches int64
	for {
		w.resetCaptures()
		k := bt.NextBlock(&w.eb, blockRows)
		if k == 0 {
			return bt.Err()
		}
		blk := p.getBlock(si)
		blk.stats.LeafFetches = bt.LeafFetches() - prevFetches
		prevFetches = bt.LeafFetches()
		for i := 0; i < k; i++ {
			if err := w.resolve(blk, i); err != nil {
				p.recycle(blk)
				return err
			}
		}
		blk.stats.Rows = int64(blk.n)
		p.addSegStats(si, blk.stats)
		if blk.n == 0 {
			p.recycle(blk)
			continue
		}
		if !send(blk) {
			return nil
		}
	}
}

// resolve turns entry i of the current block fill into a committed row
// in blk, or drops it when a filter rejects it. The tier order matches
// the serial source exactly: key bytes, then cached payload, then heap.
func (w *segWorker) resolve(blk *RowBlock, i int) error {
	p := w.p
	key := w.eb.Key(i)
	rid := storage.UnpackRID(w.eb.Value(i))
	hit := false
	var payload []byte
	if w.useCache && w.hits[i] {
		payload = w.payloads[w.poffs[i]:w.poffs[i+1]]
		hit = true
	}
	// MVCC visibility, mirroring the serial indexSource: unique entries
	// resolve through the version chain under a pinned snapshot, every
	// other shape is a per-RID check.
	if p.snap != snapLatest && p.ix.unique {
		vrid, ok := p.ix.table.resolveVisible(rid, p.snap)
		if !ok {
			return nil
		}
		if vrid != rid {
			hit = false // cache payload describes the newest version
			rid = vrid
		}
	} else if !p.ix.table.ridVisible(rid, p.snap) {
		return nil
	}
	keyDecoded := false
	if w.needKey {
		kv, err := tuple.DecodeKeyInto(w.keyVals[:0], key, p.keyKinds...)
		if err != nil {
			return fmt.Errorf("core: decoding key: %w", err)
		}
		w.keyVals = kv
		keyDecoded = true
	}
	fp := p.fp
	if fp != nil && len(fp.key) > 0 && !fp.passKey(w.keyVals) {
		return nil
	}
	if hit && fp != nil && len(fp.cached) > 0 {
		pass, ok := fp.passCached(p.ix, payload)
		if ok && !pass {
			return nil
		}
		if !ok {
			hit = false
		}
	}
	if hit && keyDecoded && p.plan.coverable && (fp == nil || !fp.needsHeap) {
		if _, ok := p.ix.assembleInto(blk.nextRow(), w.keyVals, payload, p.plan); ok {
			blk.commit(key, rid)
			blk.stats.CacheHits++
			return nil
		}
	}
	rec, err := p.ix.table.file.GetInto(w.heapBuf[:0], rid)
	if err != nil {
		if errors.Is(err, storage.ErrDeleted) {
			return nil // racing delete committed after the entry was read
		}
		return fmt.Errorf("core: fetching %v: %w", rid, err)
	}
	w.heapBuf = rec[:0]
	row, _, err := tuple.DecodeInto(w.heapRow, p.ix.table.schema, rec)
	if err != nil {
		return fmt.Errorf("core: decoding %v: %w", rid, err)
	}
	w.heapRow = row
	blk.stats.HeapReads++
	if fp != nil && !fp.passRow(row) {
		return nil
	}
	projectRowInto(blk.nextRow(), row, p.plan.idx)
	blk.commit(key, rid)
	return nil
}
