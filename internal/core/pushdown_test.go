package core

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// bruteFilter applies filters to the full row set by brute force —
// the reference the pushdown tiers are checked against.
func bruteFilter(rows int, keep func(i int) bool) []int64 {
	var ids []int64
	for i := 0; i < rows; i++ {
		if keep(i) {
			ids = append(ids, int64(i))
		}
	}
	return ids
}

func collectIDs(t *testing.T, cur *Cursor, err error) ([]int64, QueryStats) {
	t.Helper()
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer cur.Close()
	var ids []int64
	for cur.Next() {
		ids = append(ids, cur.Row()[0].Int)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	return ids, cur.Stats()
}

func assertIDs(t *testing.T, name string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// Rows: id=i, a=3i, b=i%97, blob="padding-padding-%06d".
func TestFilterKeyTier(t *testing.T) {
	const rows = 2000
	_, _, ix := newQueryFixture(t, rows, true)
	// A key filter rejects on decoded key bytes: rejected rows touch
	// neither cache nor heap, so the tier counters only count survivors.
	cur, err := ix.Query(
		WithProjection("id", "a"),
		WithFilter(Filter{Field: "id", Op: CmpGe, Value: tuple.Int64(500)},
			Filter{Field: "id", Op: CmpLt, Value: tuple.Int64(700)}),
	)
	ids, stats := collectIDs(t, cur, err)
	assertIDs(t, "key filter", ids, bruteFilter(rows, func(i int) bool { return i >= 500 && i < 700 }))
	if got := stats.CacheHits + stats.HeapReads; got != 200 {
		t.Fatalf("key-rejected rows were materialized: %d tier answers, want 200", got)
	}
}

func TestFilterCachedTier(t *testing.T) {
	const rows = 2000
	_, _, ix := newQueryFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	// b = i % 97 is a cached field; with a warm cache and a coverable
	// projection the filter evaluates on cached payloads — zero heap.
	cur, err := ix.Query(
		WithProjection("id", "b"),
		WithFilter(Filter{Field: "b", Op: CmpEq, Value: tuple.Int32(13)}),
	)
	ids, stats := collectIDs(t, cur, err)
	assertIDs(t, "cached filter", ids, bruteFilter(rows, func(i int) bool { return i%97 == 13 }))
	if stats.HeapReads != 0 {
		t.Fatalf("cached-tier filter read the heap %d times", stats.HeapReads)
	}
	if stats.CacheHits != int64(len(ids)) {
		t.Fatalf("cache hits %d, want %d", stats.CacheHits, len(ids))
	}
}

func TestFilterHeapTier(t *testing.T) {
	const rows = 500
	_, _, ix := newQueryFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	// blob is neither key nor cached: the filter needs the heap row, and
	// every key-surviving entry pays a heap read.
	want := bruteFilter(rows, func(i int) bool {
		return intRow(i)[3].Str == "padding-padding-000123"
	})
	cur, err := ix.Query(
		WithFilter(Filter{Field: "blob", Op: CmpEq, Value: tuple.String("padding-padding-000123")}),
	)
	ids, stats := collectIDs(t, cur, err)
	assertIDs(t, "heap filter", ids, want)
	if stats.HeapReads != rows {
		t.Fatalf("heap-tier filter read the heap %d times, want %d", stats.HeapReads, rows)
	}
	// Mixing in a cached filter still rejects cheaply before the heap.
	cur, err = ix.Query(
		WithFilter(
			Filter{Field: "b", Op: CmpLt, Value: tuple.Int32(10)},
			Filter{Field: "blob", Op: CmpNe, Value: tuple.String("padding-padding-000004")}),
	)
	ids, stats = collectIDs(t, cur, err)
	assertIDs(t, "mixed filter", ids, bruteFilter(rows, func(i int) bool {
		return i%97 < 10 && i != 4
	}))
	if stats.HeapReads >= rows {
		t.Fatalf("cached pre-filter did not cut heap reads: %d", stats.HeapReads)
	}
}

func TestFilterValidationAndHeapScan(t *testing.T) {
	_, tb, ix := newQueryFixture(t, 300, true)
	if _, err := ix.Query(WithFilter(Filter{Field: "nope", Op: CmpEq, Value: tuple.Int64(1)})); err == nil {
		t.Fatal("unknown filter field must error")
	}
	if _, err := ix.Query(WithFilter(Filter{Field: "a", Op: CmpEq, Value: tuple.String("x")})); err == nil {
		t.Fatal("kind-mismatched filter must error")
	}
	if _, err := ix.Query(WithFilter(Filter{Field: "a", Op: CmpOp(42), Value: tuple.Int64(1)})); err == nil {
		t.Fatal("unknown CmpOp must error")
	}
	// Filters work on plain heap scans too.
	cur, err := tb.Query(WithFilter(Filter{Field: "a", Op: CmpGt, Value: tuple.Int64(600)}))
	ids, _ := collectIDs(t, cur, err)
	want := bruteFilter(300, func(i int) bool { return 3*i > 600 })
	if len(ids) != len(want) {
		t.Fatalf("heap-scan filter: %d rows, want %d", len(ids), len(want))
	}
}

func TestParallelQueryWithFilters(t *testing.T) {
	const rows = 4000
	_, _, ix := newQueryFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	want := bruteFilter(rows, func(i int) bool { return i%97 < 30 && i >= 1000 })
	filters := WithFilter(
		Filter{Field: "b", Op: CmpLt, Value: tuple.Int32(30)},
		Filter{Field: "id", Op: CmpGe, Value: tuple.Int64(1000)})
	for _, mode := range []MergeMode{MergeOrdered, MergeUnordered} {
		cur, err := ix.Query(WithProjection("id", "b"), filters, WithParallel(4), WithMergeMode(mode))
		ids, stats := collectIDs(t, cur, err)
		if mode == MergeOrdered {
			assertIDs(t, "parallel ordered filtered", ids, want)
		} else {
			seen := make(map[int64]int)
			for _, id := range ids {
				seen[id]++
			}
			for _, id := range want {
				if seen[id] != 1 {
					t.Fatalf("unordered filtered: id %d served %d times", id, seen[id])
				}
			}
			if len(ids) != len(want) {
				t.Fatalf("unordered filtered: %d rows, want %d", len(ids), len(want))
			}
		}
		if stats.HeapReads != 0 {
			t.Fatalf("mode %v: pushed filters still read heap %d times", mode, stats.HeapReads)
		}
	}
}

// aggSpecsAll exercises every operator across the tiers: count(*),
// count(field), sums of both numeric kinds, min/max on key and cached
// fields.
func aggSpecsAll() []AggSpec {
	return []AggSpec{
		{Op: AggCount},
		{Op: AggCount, Field: "b"},
		{Op: AggSum, Field: "a"},
		{Op: AggSum, Field: "b"},
		{Op: AggMin, Field: "id"},
		{Op: AggMax, Field: "id"},
		{Op: AggMin, Field: "b"},
		{Op: AggMax, Field: "b"},
	}
}

func assertAggEqual(t *testing.T, name string, got, want AggResult) {
	t.Helper()
	if got.Rows != want.Rows {
		t.Fatalf("%s: rows %d, want %d", name, got.Rows, want.Rows)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: %d values, want %d", name, len(got.Values), len(want.Values))
	}
	for i := range got.Values {
		g, w := got.Values[i], want.Values[i]
		if g.Kind != w.Kind || g.Null != w.Null || (!g.Null && g.Compare(w) != 0) {
			t.Fatalf("%s: value %d = %v, want %v", name, i, g, w)
		}
	}
}

// TestAggregatePushdownMatchesCursor is the acceptance invariant:
// pushed-down count/min/max/sum return identical results to
// cursor-side evaluation — unfiltered, filtered, serial and parallel.
func TestAggregatePushdownMatchesCursor(t *testing.T) {
	const rows = 3000
	_, _, ix := newQueryFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	cases := []struct {
		name string
		opts []QueryOption
	}{
		{"full", nil},
		{"keyfilter", []QueryOption{WithFilter(Filter{Field: "id", Op: CmpLt, Value: tuple.Int64(1234)})}},
		{"cachedfilter", []QueryOption{WithFilter(Filter{Field: "b", Op: CmpGe, Value: tuple.Int32(50)})}},
		{"bounded", []QueryOption{WithKeyRange([]tuple.Value{tuple.Int64(100)}, []tuple.Value{tuple.Int64(2900)})}},
		{"empty", []QueryOption{WithKeyRange([]tuple.Value{tuple.Int64(5000)}, nil)}},
	}
	for _, tc := range cases {
		pushed, err := ix.Aggregate(aggSpecsAll(), tc.opts...)
		if err != nil {
			t.Fatalf("%s: pushdown Aggregate: %v", tc.name, err)
		}
		if !pushed.Pushdown {
			t.Fatalf("%s: expected pushdown", tc.name)
		}
		cursor, err := ix.Aggregate(aggSpecsAll(), append([]QueryOption{WithCachePolicy(HeapOnly)}, tc.opts...)...)
		if err != nil {
			t.Fatalf("%s: cursor Aggregate: %v", tc.name, err)
		}
		if cursor.Pushdown {
			t.Fatalf("%s: HeapOnly must not push down", tc.name)
		}
		assertAggEqual(t, tc.name, pushed, cursor)
		for _, n := range []int{2, 4} {
			par, err := ix.Aggregate(aggSpecsAll(), append([]QueryOption{WithParallel(n)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%s n=%d: parallel Aggregate: %v", tc.name, n, err)
			}
			if par.Segments < 1 {
				t.Fatalf("%s n=%d: %d segments", tc.name, n, par.Segments)
			}
			assertAggEqual(t, tc.name+"/parallel", par, cursor)
		}
	}
	// A heap-tier aggregate field (blob) disables pushdown but stays
	// correct, as does a heap-tier filter.
	blobAgg := []AggSpec{{Op: AggMax, Field: "blob"}, {Op: AggCount}}
	res, err := ix.Aggregate(blobAgg)
	if err != nil {
		t.Fatalf("blob Aggregate: %v", err)
	}
	if res.Pushdown {
		t.Fatal("heap-field aggregate must not claim pushdown")
	}
	if res.Values[0].Str != fmt.Sprintf("padding-padding-%06d", rows-1) {
		t.Fatalf("max(blob) = %q", res.Values[0].Str)
	}
	if res.Values[1].Int != rows {
		t.Fatalf("count(*) = %d", res.Values[1].Int)
	}
}

func TestAggregateHeapAndValidation(t *testing.T) {
	const rows = 800
	_, tb, ix := newQueryFixture(t, rows, true)
	// Table.Aggregate folds heap order; results match the index path.
	heap, err := tb.Aggregate(aggSpecsAll())
	if err != nil {
		t.Fatalf("Table.Aggregate: %v", err)
	}
	idx, err := ix.Aggregate(aggSpecsAll())
	if err != nil {
		t.Fatalf("Index.Aggregate: %v", err)
	}
	assertAggEqual(t, "heap vs index", heap, idx)
	// Routed through WithIndex, Table.Aggregate hits the index path.
	routed, err := tb.Aggregate(aggSpecsAll(), WithIndex("by_id"))
	if err != nil {
		t.Fatalf("routed Aggregate: %v", err)
	}
	if !routed.Pushdown {
		t.Fatal("routed aggregate should push down")
	}
	assertAggEqual(t, "routed", routed, idx)
	// Validation.
	if _, err := ix.Aggregate(nil); err == nil {
		t.Fatal("empty specs must error")
	}
	if _, err := ix.Aggregate([]AggSpec{{Op: AggSum, Field: "blob"}}); err == nil {
		t.Fatal("sum over a string must error")
	}
	if _, err := ix.Aggregate([]AggSpec{{Op: AggSum}}); err == nil {
		t.Fatal("sum without a field must error")
	}
	if _, err := ix.Aggregate([]AggSpec{{Op: AggCount, Field: "nope"}}); err == nil {
		t.Fatal("unknown field must error")
	}
	if _, err := ix.Aggregate(aggSpecsAll(), WithLimit(5)); err == nil {
		t.Fatal("WithLimit must error")
	}
	if _, err := ix.Aggregate(aggSpecsAll(), WithReverse()); err == nil {
		t.Fatal("WithReverse must error")
	}
	if _, err := ix.Aggregate(aggSpecsAll(), WithProjection("id")); err == nil {
		t.Fatal("WithProjection must error")
	}
	if _, err := tb.Aggregate(aggSpecsAll(), WithParallel(4)); err == nil {
		t.Fatal("parallel heap aggregate must error")
	}
}

func TestAggregateNulls(t *testing.T) {
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	tb, err := e.CreateTable("n", intSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	// b is NULL on odd ids; an all-NULL field min/max yields NULL.
	for i := 0; i < 100; i++ {
		row := intRow(i)
		if i%2 == 1 {
			row[2] = tuple.Null(tuple.KindInt32)
		}
		row[1] = tuple.Null(tuple.KindInt64) // a: always NULL
		if _, err := tb.Insert(row); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	res, err := tb.Aggregate([]AggSpec{
		{Op: AggCount},
		{Op: AggCount, Field: "b"},
		{Op: AggSum, Field: "b"},
		{Op: AggMin, Field: "a"},
		{Op: AggSum, Field: "a"},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if res.Values[0].Int != 100 {
		t.Fatalf("count(*) = %d", res.Values[0].Int)
	}
	if res.Values[1].Int != 50 {
		t.Fatalf("count(b) = %d, want 50 (NULLs don't count)", res.Values[1].Int)
	}
	var wantSum int64
	for i := 0; i < 100; i += 2 {
		wantSum += int64(i % 97)
	}
	if res.Values[2].Int != wantSum {
		t.Fatalf("sum(b) = %d, want %d", res.Values[2].Int, wantSum)
	}
	if !res.Values[3].Null || res.Values[3].Kind != tuple.KindInt64 {
		t.Fatalf("min(all-NULL) = %v, want typed NULL", res.Values[3])
	}
	if res.Values[4].Null || res.Values[4].Int != 0 {
		t.Fatalf("sum(all-NULL) = %v, want 0", res.Values[4])
	}
	// NULLs never match filters, even CmpNe.
	cur, err := tb.Query(WithFilter(Filter{Field: "b", Op: CmpNe, Value: tuple.Int32(-1)}))
	ids, _ := collectIDs(t, cur, err)
	if len(ids) != 50 {
		t.Fatalf("CmpNe over NULLs matched %d rows, want 50", len(ids))
	}
}
