package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// TestConcurrentLookupsAndUpdates hammers a cached index from multiple
// goroutines while rows are updated, checking that served values are
// always one of the values ever written for that row (no torn or stale
// reads across invalidation).
func TestConcurrentLookupsAndUpdates(t *testing.T) {
	e := newTestEngine(t)
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const rows = 200
	rids := make([]tupleRID, rows)
	for i := 0; i < rows; i++ {
		rid, err := tb.Insert(pageRow(i))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		rids[i] = tupleRID{i: i, rid: rid}
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(1))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := (g*37 + n) % rows
				n++
				key := []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
				row, res, err := ix.Lookup([]string{"latest_rev"}, key...)
				if err != nil {
					errs <- err
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("row %d vanished", i)
					return
				}
				// latest_rev is only ever i*10 (initial) or i*10+1 (updated).
				v := row[0].Int
				if v != int64(i*10) && v != int64(i*10+1) {
					errs <- fmt.Errorf("row %d served impossible value %d", i, v)
					return
				}
			}
		}(g)
	}
	// Writer: bumps latest_rev on a rotating subset.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 50; round++ {
			i := (round * 13) % rows
			key := []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
			rid, found, err := ix.LookupRID(key...)
			if err != nil || !found {
				errs <- fmt.Errorf("writer lookup %d: %v", i, err)
				return
			}
			row, err := tb.Get(rid)
			if err != nil {
				errs <- err
				return
			}
			row[4] = tuple.Int64(int64(i*10 + 1))
			if _, err := tb.Update(rid, row); err != nil {
				errs <- err
				return
			}
		}
		close(stop)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("integrity after concurrent churn: %v", err)
	}
}

type tupleRID struct {
	i   int
	rid interface{ Valid() bool }
}

// TestConcurrentInsertsDisjointTables checks engine-level isolation:
// goroutines inserting into separate tables share the pool safely.
func TestConcurrentInsertsDisjointTables(t *testing.T) {
	e := newTestEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		tb, err := e.CreateTable(fmt.Sprintf("t%d", g), pagesSchema())
		if err != nil {
			t.Fatalf("CreateTable: %v", err)
		}
		wg.Add(1)
		go func(tb *Table) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := tb.Insert(pageRow(i)); err != nil {
					errs <- err
					return
				}
			}
		}(tb)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		tb, _ := e.Table(fmt.Sprintf("t%d", g))
		if tb.Rows() != 200 {
			t.Errorf("table t%d has %d rows", g, tb.Rows())
		}
	}
}

// TestParallelIngest drives concurrent Table.Insert goroutines through
// a table with a cached unique index — the end-to-end parallel-ingest
// path: sharded heap placement feeding latch-crabbing index
// maintenance, with no stage serialized on a table-wide lock. Every
// row must be findable afterwards and the index structurally intact.
// The shard count is pinned explicitly so the multi-shard heap path is
// exercised even on a GOMAXPROCS=1 runner.
func TestParallelIngest(t *testing.T) {
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 4096})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	tb, err := e.CreateTable("page", pagesSchema(), WithHeapInsertShards(4))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if got := tb.Heap().InsertShards(); got != 4 {
		t.Fatalf("heap has %d insert shards, want 4", got)
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(1))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}

	const (
		writers   = 6
		perWriter = 400
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := tb.Insert(pageRow(w*perWriter + i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = writers * perWriter
	if tb.Rows() != total {
		t.Errorf("Rows = %d, want %d", tb.Rows(), total)
	}
	if st, err := tb.Heap().Stats(); err != nil || st.LiveRecords != total {
		t.Errorf("heap Stats: LiveRecords=%d err=%v, want %d", st.LiveRecords, err, total)
	}
	if ix.Tree().Len() != total {
		t.Errorf("index holds %d keys, want %d", ix.Tree().Len(), total)
	}
	for i := 0; i < total; i += 37 {
		key := []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
		row, res, err := ix.Lookup([]string{"latest_rev"}, key...)
		if err != nil || !res.Found {
			t.Fatalf("Lookup(%d): found=%v err=%v", i, res.Found, err)
		}
		if row[0].Int != int64(i*10) {
			t.Fatalf("Lookup(%d) latest_rev = %d, want %d", i, row[0].Int, i*10)
		}
	}
	if err := ix.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
	if pins := e.Pool().PinnedFrames(); pins != 0 {
		t.Errorf("%d pinned frames after quiesce, want 0", pins)
	}
}

// TestHeapInsertShardsPlumbing checks the engine-wide default and the
// per-table override reach the heap layer, and that append-only tables
// stay single-tailed regardless.
func TestHeapInsertShardsPlumbing(t *testing.T) {
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 256, HeapInsertShards: 2})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	def, err := e.CreateTable("def", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if got := def.Heap().InsertShards(); got != 2 {
		t.Errorf("engine default: %d shards, want 2", got)
	}
	over, err := e.CreateTable("over", pagesSchema(), WithHeapInsertShards(4))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if got := over.Heap().InsertShards(); got != 4 {
		t.Errorf("per-table override: %d shards, want 4", got)
	}
	// Explicit 0 means "automatic", overriding the engine default —
	// not "fall back to the engine default".
	auto, err := e.CreateTable("auto", pagesSchema(), WithHeapInsertShards(0))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	want := runtime.GOMAXPROCS(0)
	if want > 8 {
		want = 8
	}
	if got := auto.Heap().InsertShards(); got != want {
		t.Errorf("explicit automatic: %d shards, want min(8, GOMAXPROCS)=%d", got, want)
	}
	ao, err := e.CreateTable("ao", pagesSchema(), WithAppendOnlyHeap(), WithHeapInsertShards(4))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if got := ao.Heap().InsertShards(); got != 1 {
		t.Errorf("append-only table: %d shards, want 1", got)
	}
}
