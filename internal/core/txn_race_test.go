package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// Concurrency storms for MVCC snapshot transactions — run these with
// -race. Both tests maintain a conservation invariant (the sum over all
// rows is constant, and every committed transaction preserves it), so
// ANY cursor that observes a half-committed batch, or any GC pass that
// unlinks a version a live snapshot could still reach, breaks the sum
// or the row count and fails loudly.

// raceTableTotal seeds nKeys rows each holding value `total/nKeys` and
// returns the table, its unique index, and the invariant sum.
func raceTableSetup(t *testing.T, e *Engine, nKeys int) (*Table, *Index, int64) {
	t.Helper()
	tb, err := e.CreateTable("acct", tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.KindInt64},
		tuple.Field{Name: "v", Kind: tuple.KindInt64},
	))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ix, err := tb.CreateIndex("by_k", []string{"k"})
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	var b Batch
	const perKey = 100
	for k := 0; k < nKeys; k++ {
		b.Insert(tuple.Row{tuple.Int64(int64(k)), tuple.Int64(perKey)})
	}
	if _, err := tb.Apply(&b); err != nil {
		t.Fatalf("seed: %v", err)
	}
	return tb, ix, int64(nKeys) * perKey
}

// raceScanModes enumerates every read path a storm validates: heap
// order, ordered index, and parallel segmented scans in both merge
// modes.
func raceScanModes() map[string][]QueryOption {
	return map[string][]QueryOption{
		"heap":          nil,
		"index":         {WithIndex("by_k")},
		"par-ordered":   {WithIndex("by_k"), WithParallel(4), WithMergeMode(MergeOrdered)},
		"par-unordered": {WithIndex("by_k"), WithParallel(4), WithMergeMode(MergeUnordered)},
	}
}

// checkConservation drains the cursor and verifies the snapshot shows
// exactly nKeys rows summing to total — i.e. it is a transaction-
// consistent cut of history.
func checkConservation(cur *Cursor, err error, nKeys int, total int64, tag string) error {
	if err != nil {
		return fmt.Errorf("%s: query: %w", tag, err)
	}
	defer cur.Close()
	var sum int64
	seen := make(map[int64]bool, nKeys)
	for cur.Next() {
		r := cur.Row()
		k := r[0].Int
		if seen[k] {
			return fmt.Errorf("%s: key %d served twice", tag, k)
		}
		seen[k] = true
		sum += r[1].Int
	}
	if err := cur.Err(); err != nil {
		return fmt.Errorf("%s: cursor: %w", tag, err)
	}
	if len(seen) != nKeys {
		return fmt.Errorf("%s: saw %d rows, want %d (a batch was observed half-committed)", tag, len(seen), nKeys)
	}
	if sum != total {
		return fmt.Errorf("%s: sum %d, want %d (a batch was observed half-committed)", tag, sum, total)
	}
	return nil
}

// errRetry marks a benign race: the target row moved under us between
// lookup and staging (a concurrent commit superseded it, or GC already
// collected the superseded version). The caller just tries again — the
// transaction that would have been built could only have conflicted.
var errRetry = errors.New("txn storm: retry")

// transferOnce moves one unit from key a to key b in a single
// transaction; ErrTxnConflict (and benign lookup races, reported as
// errRetry) mean a concurrent writer won and are not failures.
func transferOnce(e *Engine, tb *Table, ix *Index, a, b int64) error {
	txn := e.Begin()
	defer txn.Abort()
	stage := func(k, delta int64) error {
		rid, found, err := ix.LookupRID(tuple.Int64(k))
		if err != nil {
			return fmt.Errorf("lookup %d: %w", k, err)
		}
		if !found {
			// A concurrent commit is mid-publication (old version already
			// dead, new entry not yet upserted): the key is never absent in
			// any committed state, so this is a retry, not a failure.
			return errRetry
		}
		row, err := tb.Get(rid)
		if err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				return errRetry
			}
			return fmt.Errorf("get %d: %w", k, err)
		}
		var batch Batch
		batch.Update(rid, tuple.Row{tuple.Int64(k), tuple.Int64(row[1].Int + delta)})
		if _, err := txn.Apply(tb, &batch); err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				return errRetry
			}
			return fmt.Errorf("stage %d: %w", k, err)
		}
		return nil
	}
	if err := stage(a, -1); err != nil {
		return err
	}
	if err := stage(b, +1); err != nil {
		return err
	}
	if err := txn.Commit(); err != nil && !errors.Is(err, ErrTxnConflict) {
		return fmt.Errorf("commit: %w", err)
	}
	return nil
}

// TestTxnStormSnapshotConsistency runs 8 writers committing transfer
// transactions against concurrent snapshot scans on every read path. No
// cursor may ever observe a half-committed batch: each snapshot must
// show all keys exactly once, summing to the invariant total.
func TestTxnStormSnapshotConsistency(t *testing.T) {
	e := newTestEngine(t)
	const nKeys = 32
	tb, ix, total := raceTableSetup(t, e, nKeys)

	const writers = 8
	const txnsPerWriter = 150
	var writerWG, readerWG sync.WaitGroup
	errc := make(chan error, writers+8)
	var stop atomic.Bool

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < txnsPerWriter; i++ {
				a := int64((w*7 + i) % nKeys)
				b := int64((w*13 + i*3 + 1) % nKeys)
				if a == b {
					b = (b + 1) % nKeys
				}
				if err := transferOnce(e, tb, ix, a, b); err != nil && !errors.Is(err, errRetry) {
					errc <- err
					return
				}
			}
		}(w)
	}

	for name, opts := range raceScanModes() {
		readerWG.Add(1)
		go func(name string, opts []QueryOption) {
			defer readerWG.Done()
			for !stop.Load() {
				txn := e.Begin()
				cur, err := txn.Query(tb, opts...)
				if cerr := checkConservation(cur, err, nKeys, total, "snap-"+name); cerr != nil {
					txn.Abort()
					errc <- cerr
					return
				}
				txn.Abort()
				// Deliberately NO latest-read conservation check here:
				// non-transactional scans are read-committed, not snapshot-
				// consistent — a scan can see a transfer's debit before its
				// credit. Only snapshot cursors promise a consistent cut;
				// latest state is validated after the storm settles.
			}
		}(name, opts)
	}

	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Quiescent: latest reads on every path must now show the conserved
	// total — all transfers were atomic or not at all.
	for name, opts := range raceScanModes() {
		cur, err := tb.Query(opts...)
		if cerr := checkConservation(cur, err, nKeys, total, "settled-"+name); cerr != nil {
			t.Error(cerr)
		}
	}
}

// TestTxnStormGCNeverUnlinksReachable churns delete+reinsert
// transactions (conservation preserved: the reinserted row carries the
// deleted row's value) while a dedicated goroutine runs GC passes
// continuously. Live snapshots must keep resolving their version of
// every key: if GC ever unlinked a version a snapshot can reach, the
// scan would miss a key or break the sum.
func TestTxnStormGCNeverUnlinksReachable(t *testing.T) {
	e := newTestEngine(t)
	const nKeys = 24
	tb, ix, total := raceTableSetup(t, e, nKeys)

	const writers = 8
	const txnsPerWriter = 120
	var wg sync.WaitGroup
	errc := make(chan error, writers+8)
	var writersLive atomic.Int64
	writersLive.Store(writers)

	churn := func(k int64) error {
		txn := e.Begin()
		defer txn.Abort()
		rid, found, err := ix.LookupRID(tuple.Int64(k))
		if err != nil {
			return fmt.Errorf("lookup %d: %w", k, err)
		}
		if !found {
			return errRetry // concurrent commit mid-publication
		}
		row, err := tb.Get(rid)
		if err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				return errRetry
			}
			return fmt.Errorf("get %d: %w", k, err)
		}
		v := row[1].Int
		var del, ins Batch
		del.Delete(rid)
		if _, err := txn.Apply(tb, &del); err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				return errRetry
			}
			return fmt.Errorf("stage delete %d: %w", k, err)
		}
		ins.Insert(tuple.Row{tuple.Int64(k), tuple.Int64(v)})
		if _, err := txn.Apply(tb, &ins); err != nil {
			return fmt.Errorf("stage reinsert %d: %w", k, err)
		}
		if err := txn.Commit(); err != nil && !errors.Is(err, ErrTxnConflict) {
			return fmt.Errorf("commit: %w", err)
		}
		return nil
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersLive.Add(-1)
			for i := 0; i < txnsPerWriter; i++ {
				if err := churn(int64((w*5 + i) % nKeys)); err != nil && !errors.Is(err, errRetry) {
					errc <- err
					return
				}
			}
		}(w)
	}

	// GC hammer: collect as aggressively as possible while snapshots are
	// live. Every pass recomputes the watermark under snapMu, so it must
	// never collect a version a registered snapshot still needs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for writersLive.Load() > 0 {
			e.RunGC()
		}
		e.RunGC()
	}()

	for name, opts := range raceScanModes() {
		wg.Add(1)
		go func(name string, opts []QueryOption) {
			defer wg.Done()
			for writersLive.Load() > 0 {
				txn := e.Begin()
				cur, err := txn.Query(tb, opts...)
				if cerr := checkConservation(cur, err, nKeys, total, "snap-"+name); cerr != nil {
					txn.Abort()
					errc <- cerr
					return
				}
				txn.Abort()
			}
		}(name, opts)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the storm settles, one full GC must leave latest state intact
	// on every path.
	e.RunGC()
	for name, opts := range raceScanModes() {
		cur, err := tb.Query(opts...)
		if cerr := checkConservation(cur, err, nKeys, total, "final-"+name); cerr != nil {
			t.Error(cerr)
		}
	}
}

// TestTxnRawApplyCheckpointNoDeadlock regression-tests the engine's
// lock order (txnMu before commitGate, never the reverse). The storm
// combines every ingredient of the historical 3-way deadlock: a pinned
// snapshot (so every raw Apply allocates a commit stamp under txnMu),
// raw Applies holding the commit gate shared, transactions committing
// under txnMu-then-gate, and gate writers (checkpoints, GC passes)
// pending exclusively. When Apply allocated its stamp while already
// inside the gate, the writer waited on Apply, Apply waited on the
// committer's txnMu, and the committer waited behind the pending
// writer — forever.
func TestTxnRawApplyCheckpointNoDeadlock(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Options{Path: filepath.Join(dir, "db"), WAL: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	tb := kvTable(t, e)

	snap := e.Begin() // keeps rawStampTS on its txnMu-taking path
	defer snap.Abort()

	const iters = 150
	var wg sync.WaitGroup
	errc := make(chan error, 3)
	wg.Add(1)
	go func() { // raw writer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var b Batch
			b.Insert(kvRow(int64(1_000_000+i), int64(i)))
			if _, err := tb.Apply(&b); err != nil {
				errc <- fmt.Errorf("raw apply: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // transactional writer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			txn := e.Begin()
			var b Batch
			b.Insert(kvRow(int64(2_000_000+i), int64(i)))
			if _, err := txn.Apply(tb, &b); err != nil {
				txn.Abort()
				errc <- fmt.Errorf("txn apply: %w", err)
				return
			}
			if err := txn.Commit(); err != nil {
				errc <- fmt.Errorf("txn commit: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // gate writers
		defer wg.Done()
		for i := 0; i < iters/5; i++ {
			if err := e.Checkpoint(); err != nil {
				errc <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			e.RunGC()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("lock-order deadlock: storm did not finish")
	}
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := tb.Rows(); got != 2*iters {
		t.Fatalf("Rows() = %d after storm, want %d", got, 2*iters)
	}
}
