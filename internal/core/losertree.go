package core

import "bytes"

// ltStream is one segment's stream of row blocks feeding the ordered
// merge. Each stream has a dedicated producer goroutine; the consumer
// owns blk/pos/done.
type ltStream struct {
	ch   chan *RowBlock
	blk  *RowBlock
	pos  int
	done bool
}

// head returns the stream's current key.
func (s *ltStream) head() []byte { return s.blk.key(s.pos) }

// loserTree k-way merges segment streams by encoded key. The classic
// tournament layout: tree[1..k-1] hold the losers of each internal
// match, tree[0] the overall winner; a replay after advancing stream s
// walks only s's path to the root, so each served row costs O(log k)
// comparisons instead of the O(k) of a linear scan over segment heads.
//
// Advancing is lazy: the winner served by the previous step is advanced
// at the start of the next one, so the block slab backing the row the
// cursor currently exposes is never recycled while the caller can still
// see it.
type loserTree struct {
	p       *parallelSource
	streams []ltStream
	tree    []int // internal nodes; tree[0] = current winner
	k       int
	last    int // stream served by the previous step, -1 before the first
	inited  bool
}

func newLoserTree(p *parallelSource, chans []chan *RowBlock) *loserTree {
	k := len(chans)
	lt := &loserTree{p: p, streams: make([]ltStream, k), tree: make([]int, k), k: k, last: -1}
	for i := range lt.streams {
		lt.streams[i].ch = chans[i]
	}
	return lt
}

// load blocks until stream s has a non-empty current block or its
// channel closes (stream exhausted). Consumed blocks are recycled.
func (lt *loserTree) load(s int) {
	st := &lt.streams[s]
	if st.blk != nil {
		lt.p.recycle(st.blk)
		st.blk = nil
	}
	for {
		blk, ok := <-st.ch
		if !ok {
			st.done = true
			return
		}
		lt.p.takeStats(blk)
		if blk.n == 0 {
			lt.p.recycle(blk)
			continue
		}
		st.blk, st.pos = blk, 0
		return
	}
}

// beats reports whether stream a's head orders before stream b's.
// Exhausted streams always lose; ties break toward the lower stream
// index, which is also key order (segments are disjoint and sorted).
func (lt *loserTree) beats(a, b int) bool {
	sa, sb := &lt.streams[a], &lt.streams[b]
	switch {
	case sa.done:
		return false
	case sb.done:
		return true
	}
	if c := bytes.Compare(sa.head(), sb.head()); c != 0 {
		return c < 0
	}
	return a < b
}

// init fills every stream's first block and builds the tournament
// bottom-up.
func (lt *loserTree) init() {
	for i := 0; i < lt.k; i++ {
		lt.load(i)
	}
	winners := make([]int, 2*lt.k)
	for i := lt.k; i < 2*lt.k; i++ {
		winners[i] = i - lt.k
	}
	for i := lt.k - 1; i >= 1; i-- {
		a, b := winners[2*i], winners[2*i+1]
		if lt.beats(a, b) {
			winners[i], lt.tree[i] = a, b
		} else {
			winners[i], lt.tree[i] = b, a
		}
	}
	if lt.k > 1 {
		lt.tree[0] = winners[1]
	} else {
		lt.tree[0] = 0
	}
	lt.inited = true
}

// advance steps stream s to its next row (pulling the next block when
// the current one is spent) and replays s's path to the root.
func (lt *loserTree) advance(s int) {
	st := &lt.streams[s]
	st.pos++
	if st.pos >= st.blk.n {
		lt.load(s)
	}
	w := s
	for i := (s + lt.k) / 2; i >= 1; i /= 2 {
		if lt.beats(lt.tree[i], w) {
			w, lt.tree[i] = lt.tree[i], w
		}
	}
	lt.tree[0] = w
}

// next returns the stream holding the globally smallest head, or -1
// when every stream is exhausted. The caller must serve that stream's
// head before calling next again.
func (lt *loserTree) next() int {
	if !lt.inited {
		lt.init()
	} else if lt.last >= 0 {
		lt.advance(lt.last)
	}
	w := lt.tree[0]
	if lt.streams[w].done {
		lt.last = -1
		return -1
	}
	lt.last = w
	return w
}
