package core

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// Transactional extension of the crash-recovery matrix: the child
// applies the SAME per-worker workload as TestCrashChild, but every
// batch goes through an MVCC transaction split across two Apply calls
// (inserts staged first, then updates+deletes), so atomicity must hold
// across the whole transaction, not just one batch. On top of the
// base matrix's pipeline points it crashes:
//
//   - between the transaction's WAL record append and group-commit
//     fsync ("txn:appended") — the commit was never acked, so recovery
//     may or may not replay it, but never partially;
//   - mid-GC ("gc:unlinked") — heap row unlinked, index entries and
//     meta still present, nothing logged: an interrupted GC pass must
//     leave zero trace after recovery re-derives it;
//   - at checkpoint stages, now exercising version-metadata manifests.
//
// Workers also keep staging-only "poison" transactions (begun, staged,
// sometimes still open at the kill) that are never committed: recovery
// must show zero trace of them — staging is purely in-memory and the
// WAL carries only committed transactions.

// crashPoisonID is the id a worker's never-committed transaction
// stages; it must never appear after recovery.
func crashPoisonID(w int) int64 { return int64(w*crashWorkerStride + 999_999) }

// TestCrashTxnChild is re-execed by TestCrashTxnRecoveryMatrix.
func TestCrashTxnChild(t *testing.T) {
	dir := os.Getenv("NBLB_CRASH_TXN_DIR")
	if dir == "" {
		t.Skip("crash txn child: run by TestCrashTxnRecoveryMatrix")
	}
	point := os.Getenv("NBLB_CRASH_POINT")
	opts := crashOptions(dir)

	die := func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) }

	if rest, ok := strings.CutPrefix(point, "data:write:"); ok {
		var n int64
		fmt.Sscanf(rest, "%d", &n)
		inner, err := storage.NewFileDisk(opts.Path, opts.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		opts.Disk = storage.NewFaultDisk(inner, storage.FaultPlan{
			Op:      storage.FaultWrite,
			After:   n,
			Mode:    storage.FaultTorn,
			Seed:    42,
			OnFault: die,
		})
	}

	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("t", crashSchema())
	if err != nil {
		t.Fatal(err)
	}
	byID, err := tbl.CreateIndex("by_id", []string{"id"}, WithCache("val"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_batch", []string{"batch"}, NonUnique()); err != nil {
		t.Fatal(err)
	}

	ackF, err := os.OpenFile(filepath.Join(dir, "acks"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var ackMu sync.Mutex

	if cut := strings.LastIndex(point, ":"); cut >= 0 && !strings.HasPrefix(point, "data:") {
		name, nStr := point[:cut], point[cut+1:]
		var n int64
		fmt.Sscanf(nStr, "%d", &n)
		var hits atomic.Int64
		wal.SetTestHook(func(p string) {
			if p == name && hits.Add(1) == n {
				die()
			}
		})
		defer wal.SetTestHook(nil)
	}

	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prevRIDs [3]storage.RID
			var poison *Txn
			for b := 0; b < crashMaxBatches; b++ {
				txn := e.Begin()
				var ins Batch
				for j := 0; j < crashInsPerBatch; j++ {
					ins.Insert(crashRow(w, b, j, int64(b)))
				}
				if _, err := txn.Apply(tbl, &ins); err != nil {
					return
				}
				if b > 0 {
					var mod Batch
					mod.Update(prevRIDs[0], crashRow(w, b-1, 0, int64(-b)))
					mod.Update(prevRIDs[1], crashRow(w, b-1, 1, int64(-b)))
					mod.Delete(prevRIDs[2])
					if _, err := txn.Apply(tbl, &mod); err != nil {
						return
					}
				}
				if err := txn.Commit(); err != nil {
					// Dying on another goroutine's schedule: stop quietly.
					return
				}
				ackMu.Lock()
				fmt.Fprintf(ackF, "%d %d\n", w, b)
				ackF.Sync()
				ackMu.Unlock()

				// The next transaction's write targets: RIDs exist only
				// after commit, so look them up through the unique index.
				for i, j := range [3]int{0, 1, 7} {
					rid, found, lerr := byID.LookupRID(tuple.Int64(int64(w*crashWorkerStride + b*10 + j)))
					if lerr != nil || !found {
						return
					}
					prevRIDs[i] = rid
				}

				// Poison: keep an uncommitted staged transaction in flight
				// most of the time; cycle it so its snapshot doesn't pin the
				// GC watermark for long.
				if b%10 == 0 {
					if poison != nil {
						poison.Abort()
					}
					poison = e.Begin()
					var pb Batch
					pb.Insert(tuple.Row{
						tuple.Int64(crashPoisonID(w)),
						tuple.Int32(int32(w)),
						tuple.Int64(-1),
						tuple.Int64(-999),
					})
					if _, err := poison.Apply(tbl, &pb); err != nil {
						return
					}
				}

				if w == 0 && b%8 == 7 {
					e.RunGC()
				}
			}
			if poison != nil {
				poison.Abort()
			}
		}(w)
	}
	wg.Wait()
	e.Close()
}

func TestCrashTxnRecoveryMatrix(t *testing.T) {
	if os.Getenv("NBLB_CRASH_TXN_DIR") != "" || os.Getenv("NBLB_CRASH_DIR") != "" {
		t.Skip("inside crash child")
	}
	if testing.Short() {
		t.Skip("crash matrix re-execs the test binary per point")
	}
	points := []string{
		"txn:appended:1",
		"txn:appended:10",
		"txn:appended:40",
		"wal:append:5",
		"wal:synced:3",
		"ckpt:manifest:1",
		"ckpt:truncated:1",
		"gc:unlinked:1",
		"gc:unlinked:30",
		"data:write:5",
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range points {
		point := point
		t.Run(strings.ReplaceAll(point, ":", "_"), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(bin, "-test.run", "^TestCrashTxnChild$")
			cmd.Env = append(os.Environ(),
				"NBLB_CRASH_TXN_DIR="+dir,
				"NBLB_CRASH_POINT="+point,
			)
			out, runErr := cmd.CombinedOutput()
			killed := false
			if ee, ok := runErr.(*exec.ExitError); ok {
				if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
					killed = true
				}
			}
			if runErr != nil && !killed {
				t.Fatalf("child failed (not SIGKILL): %v\n%s", runErr, out)
			}
			if !killed {
				t.Logf("point %s never fired; child completed — verifying anyway", point)
			}
			// The base contract is identical: per-worker prefix of WHOLE
			// transactions, heap/index agreement, integrity. Poison ids
			// fall outside every model prefix, so the "unexpected id"
			// check proves uncommitted transactions left zero trace.
			verifyCrashRecovery(t, dir)
			verifyTxnAfterRecovery(t, dir)
		})
	}
}

// verifyTxnAfterRecovery reopens the database a second time (recovery
// of a recovered store must be a no-op) and commits a transaction end
// to end.
func verifyTxnAfterRecovery(t *testing.T, dir string) {
	t.Helper()
	e, err := NewEngine(crashOptions(dir))
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer e.Close()
	tbl, err := e.Table("t")
	if err != nil {
		t.Fatalf("table lost: %v", err)
	}
	clock := e.Clock()
	txn := e.Begin()
	var b Batch
	b.Insert(crashRow(crashWorkers+1, 0, 3, 11))
	if _, err := txn.Apply(tbl, &b); err != nil {
		t.Fatalf("stage after recovery: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if got := e.Clock(); got <= clock {
		t.Fatalf("clock did not advance across recovered commit: %d -> %d", clock, got)
	}
	byID := mustIndex(t, tbl, "by_id")
	row, res, err := byID.Lookup(nil, tuple.Int64(int64((crashWorkers+1)*crashWorkerStride+3)))
	if err != nil || !res.Found {
		t.Fatalf("committed row not found after recovery: found=%v err=%v", res.Found, err)
	}
	if row[3].Int != 11 {
		t.Fatalf("committed row val = %d, want 11", row[3].Int)
	}
}

// TestCrashGCRecoveryChild is re-execed twice by TestCrashGCRecovery:
// phase "build" constructs a store whose checkpoint carries live
// version history (a reader snapshot pins old versions across committed
// updates) and SIGKILLs without closing — the crash image; phase
// "recover" reopens it with a hook that kills at the gc:recovery seam,
// dying in the middle of recovery itself, right before the
// recovery-time GC sweep.
func TestCrashGCRecoveryChild(t *testing.T) {
	dir := os.Getenv("NBLB_CRASH_GC_DIR")
	if dir == "" {
		t.Skip("crash gc child: run by TestCrashGCRecovery")
	}
	die := func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) }

	switch os.Getenv("NBLB_CRASH_GC_PHASE") {
	case "build":
		e, err := NewEngine(crashOptions(dir))
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := e.CreateTable("t", crashSchema())
		if err != nil {
			t.Fatal(err)
		}
		byID, err := tbl.CreateIndex("by_id", []string{"id"}, WithCache("val"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.CreateIndex("by_batch", []string{"batch"}, NonUnique()); err != nil {
			t.Fatal(err)
		}
		txn := e.Begin()
		var ins Batch
		for j := 0; j < crashInsPerBatch; j++ {
			ins.Insert(crashRow(0, 0, j, int64(j)))
		}
		if _, err := txn.Apply(tbl, &ins); err != nil {
			t.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		// A reader snapshot pins the GC watermark below the updates that
		// follow, so the version store still holds the old row images
		// when the checkpoint manifest is written.
		reader := e.Begin()
		defer reader.Abort()
		upd := e.Begin()
		var mod Batch
		for j := 0; j < crashInsPerBatch; j++ {
			rid, found, lerr := byID.LookupRID(tuple.Int64(int64(j)))
			if lerr != nil || !found {
				t.Fatalf("build: rid lookup j=%d: found=%v err=%v", j, found, lerr)
			}
			mod.Update(rid, crashRow(0, 0, j, int64(100+j)))
		}
		if _, err := upd.Apply(tbl, &mod); err != nil {
			t.Fatal(err)
		}
		if err := upd.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		die()
	case "recover":
		wal.SetTestHook(func(p string) {
			if p == "gc:recovery" {
				die()
			}
		})
		defer wal.SetTestHook(nil)
		_, err := NewEngine(crashOptions(dir))
		t.Fatalf("gc:recovery never fired: the build phase left no version history (NewEngine err=%v)", err)
	default:
		t.Fatalf("unknown NBLB_CRASH_GC_PHASE %q", os.Getenv("NBLB_CRASH_GC_PHASE"))
	}
}

// TestCrashGCRecovery is the crash-matrix case for the gc:recovery
// seam (registered in analysis.CrashMatrixPoints): a store that dies
// in the middle of its recovery-time GC sweep must recover cleanly on
// the next open — recovery restarted over a half-recovered store is
// still recovery.
func TestCrashGCRecovery(t *testing.T) {
	if os.Getenv("NBLB_CRASH_TXN_DIR") != "" || os.Getenv("NBLB_CRASH_DIR") != "" || os.Getenv("NBLB_CRASH_GC_DIR") != "" {
		t.Skip("inside crash child")
	}
	if testing.Short() {
		t.Skip("crash matrix re-execs the test binary per point")
	}
	dir := t.TempDir()
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"build", "recover"} {
		cmd := exec.Command(bin, "-test.run", "^TestCrashGCRecoveryChild$")
		cmd.Env = append(os.Environ(),
			"NBLB_CRASH_GC_DIR="+dir,
			"NBLB_CRASH_GC_PHASE="+phase,
		)
		out, runErr := cmd.CombinedOutput()
		killed := false
		if ee, ok := runErr.(*exec.ExitError); ok {
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
				killed = true
			}
		}
		if !killed {
			t.Fatalf("phase %s did not die by SIGKILL (err=%v):\n%s", phase, runErr, out)
		}
	}
	// Third open: recovery over the mid-recovery crash image must
	// converge — updated values visible, version history flattened,
	// indexes intact.
	e, err := NewEngine(crashOptions(dir))
	if err != nil {
		t.Fatalf("recovery after mid-recovery crash failed: %v", err)
	}
	defer e.Close()
	tbl, err := e.Table("t")
	if err != nil {
		t.Fatalf("table lost: %v", err)
	}
	byID := mustIndex(t, tbl, "by_id")
	for j := 0; j < crashInsPerBatch; j++ {
		row, res, err := byID.Lookup(nil, tuple.Int64(int64(j)))
		if err != nil || !res.Found {
			t.Fatalf("row %d lost after mid-recovery crash: found=%v err=%v", j, res.Found, err)
		}
		if row[3].Int != int64(100+j) {
			t.Fatalf("row %d val = %d, want %d (committed update lost)", j, row[3].Int, 100+j)
		}
	}
	if err := byID.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("by_id integrity after mid-recovery crash: %v", err)
	}
	if err := mustIndex(t, tbl, "by_batch").Tree().CheckIntegrity(); err != nil {
		t.Fatalf("by_batch integrity after mid-recovery crash: %v", err)
	}
}
