package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// ErrTxnDone reports a Txn used after Commit or Abort.
var ErrTxnDone = errors.New("core: transaction already finished")

// ErrTxnConflict reports first-committer-wins validation failure: a row
// this transaction staged a write against was modified by a transaction
// that committed after this one began.
var ErrTxnConflict = errors.New("core: transaction conflict")

// Txn is a multi-op snapshot transaction. Begin pins a snapshot
// timestamp; Apply stages batches (nothing is written); Query opens
// snapshot-isolated cursors that read as-of the start timestamp without
// re-validating against in-flight writers; Commit applies every staged
// op atomically under one commit timestamp and one WAL record, after a
// first-committer-wins conflict check. Abort discards the stage.
//
// Semantics and limits, deliberately explicit:
//
//   - Isolation level is snapshot isolation: reads see the last state
//     committed before Begin, writes conflict-check against commits
//     that landed since. Write skew is possible, as in any SI engine.
//   - Query does NOT see this transaction's own staged writes (no
//     read-your-own-writes); it reads the Begin snapshot.
//   - Raw Table.Apply participates in MVCC only as far as snapshots
//     need it: while any snapshot is pinned, raw INSERTS are stamped
//     with a fresh commit timestamp (so open snapshot cursors — e.g.
//     behind the server's write coalescer — never see rows that landed
//     after they began); raw updates and deletes still mutate in place
//     and are invisible to the conflict check. Mixing raw updates or
//     deletes with transactions on the same rows is unsupported.
//   - A Txn is not safe for concurrent use by multiple goroutines.
//   - Cursors from Query must be exhausted or closed before Commit or
//     Abort: finishing the transaction releases its snapshot, after
//     which the GC may unlink versions the cursor could still visit.
type Txn struct {
	e       *Engine
	startTS uint64
	done    bool

	tables  []*txnTable
	byName  map[string]*txnTable
	claimed map[string]claimRef      // staged unique entry keys
	freed   map[string]struct{}      // unique entry keys this txn's updates/deletes release
	writes  map[writeTarget]struct{} // staged update/delete targets
	nBatch  int                      // batches staged (for error attribution)
}

// claimRef records which staged op claimed a unique key, for
// duplicate-key attribution in both stage-time and commit-time errors.
type claimRef struct {
	ix    *Index
	entry []byte
	batch int
	op    int
}

type writeTarget struct {
	table string
	rid   storage.RID
}

type txnTable struct {
	t   *Table
	ops []txnOp
}

type txnOp struct {
	kind   BatchOpKind
	rid    storage.RID // update/delete target
	rec    []byte      // encoded post-image (insert/update)
	row    tuple.Row   // post-image (aliased; see Batch aliasing rules)
	oldRow tuple.Row   // pre-image loaded at stage time (update/delete)
	newRID storage.RID // filled at commit
}

// Begin starts a transaction reading as-of the current committed state.
func (e *Engine) Begin() *Txn {
	return &Txn{e: e, startTS: e.registerSnapshot()}
}

// StartTS returns the transaction's snapshot timestamp.
func (tx *Txn) StartTS() uint64 { return tx.startTS }

func (tx *Txn) table(t *Table) *txnTable {
	if tx.byName == nil {
		tx.byName = make(map[string]*txnTable)
	}
	tt := tx.byName[t.name]
	if tt == nil {
		tt = &txnTable{t: t}
		tx.byName[t.name] = tt
		tx.tables = append(tx.tables, tt)
	}
	return tt
}

// Apply stages a batch against t. Nothing is written: rows encode, the
// pre-images of update/delete targets load, and unique-key claims are
// checked against the transaction's OWN staged writes — a duplicate key
// between two staged ops fails here, with Result.ErrIndex pointing at
// the offending op in THIS batch (the fix the raw pipeline cannot make:
// its ErrIndex only ever sees the durable tree). A failed Apply stages
// none of the batch. Duplicates against already-committed state are
// checked at Commit, under the commit lock.
//
// Like Batch itself, staged rows are aliased, not copied: they must
// stay unchanged until Commit returns.
func (tx *Txn) Apply(t *Table, b *Batch) (Result, error) {
	res := Result{ErrIndex: -1}
	if tx.done {
		res.Err = ErrTxnDone
		return res, res.Err
	}
	if t.engine != tx.e {
		res.Err = fmt.Errorf("core: table %q belongs to a different engine", t.name)
		return res, res.Err
	}
	if b == nil || len(b.ops) == 0 {
		return res, nil
	}
	batchNo := tx.nBatch

	staged := make([]txnOp, 0, len(b.ops))
	var claims []claimRef
	var frees []string
	var targets []writeTarget
	claimedAt := func(key string) (claimRef, bool) {
		if c, ok := tx.claimed[key]; ok {
			return c, true
		}
		for _, c := range claims {
			if claimKey(c.ix, c.entry) == key {
				return c, true
			}
		}
		return claimRef{}, false
	}

	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := range b.ops {
		op := &b.ops[i]
		sop := txnOp{kind: op.kind, rid: op.rid, row: op.row}
		var err error
		switch op.kind {
		case BatchInsert:
			if sop.rec, err = tuple.Encode(t.schema, op.row, nil); err != nil {
				return res, res.fail(i, fmt.Errorf("core: encoding row for %q: %w", t.name, err))
			}
		case BatchUpdate, BatchDelete:
			tgt := writeTarget{t.name, op.rid}
			if _, dup := tx.writes[tgt]; dup {
				return res, res.fail(i, fmt.Errorf("core: row %v already written in this transaction", op.rid))
			}
			for _, w := range targets {
				if w == tgt {
					return res, res.fail(i, fmt.Errorf("core: row %v already written in this transaction", op.rid))
				}
			}
			targets = append(targets, tgt)
			if sop.oldRow, err = t.Get(op.rid); err != nil {
				return res, res.fail(i, fmt.Errorf("core: staging write of %v: %w", op.rid, err))
			}
			if op.kind == BatchUpdate {
				if sop.rec, err = tuple.Encode(t.schema, op.row, nil); err != nil {
					return res, res.fail(i, fmt.Errorf("core: encoding row for %q: %w", t.name, err))
				}
			}
		}
		// Unique-key accounting against the transaction's own stage.
		for _, ix := range t.indexes {
			if !ix.unique {
				continue
			}
			var oldKey, newKey []byte
			if sop.oldRow != nil {
				if oldKey, err = ix.entryKey(sop.oldRow, op.rid); err != nil {
					return res, res.fail(i, err)
				}
			}
			if op.kind != BatchDelete {
				if newKey, err = ix.entryKey(sop.row, storage.InvalidRID); err != nil {
					return res, res.fail(i, err)
				}
			}
			if oldKey != nil && newKey != nil && string(oldKey) == string(newKey) {
				continue // key unchanged: the version chain carries it
			}
			if newKey != nil {
				k := claimKey(ix, newKey)
				if c, dup := claimedAt(k); dup {
					return res, res.fail(i, fmt.Errorf(
						"core: index %q: duplicate key staged by op %d of batch %d in this transaction",
						ix.name, c.op, c.batch))
				}
				claims = append(claims, claimRef{ix: ix, entry: newKey, batch: batchNo, op: i})
			}
			if oldKey != nil {
				frees = append(frees, claimKey(ix, oldKey))
			}
		}
		staged = append(staged, sop)
	}

	// The whole batch validated — merge it into the stage.
	tt := tx.table(t)
	tt.ops = append(tt.ops, staged...)
	if tx.claimed == nil {
		tx.claimed = make(map[string]claimRef)
	}
	if tx.freed == nil {
		tx.freed = make(map[string]struct{})
	}
	if tx.writes == nil {
		tx.writes = make(map[writeTarget]struct{})
	}
	for _, c := range claims {
		tx.claimed[claimKey(c.ix, c.entry)] = c
	}
	// A key stays freed even when re-claimed: the commit pre-check uses
	// the freed set to recognize that the durable occupant of a claimed
	// key is a row this transaction itself kills (the conflict check has
	// already proven nobody else touched that row).
	for _, f := range frees {
		tx.freed[f] = struct{}{}
	}
	for _, w := range targets {
		tx.writes[w] = struct{}{}
	}
	tx.nBatch++
	res.Applied = len(staged)
	return res, nil
}

func claimKey(ix *Index, entry []byte) string {
	return ix.table.name + "\x00" + ix.name + "\x00" + string(entry)
}

// Query opens a cursor over t reading as-of the transaction's start
// timestamp: a timestamp-consistent snapshot, never re-validated
// against concurrent committers. All Query options pass through
// (WithIndex, bounds, projections, filters, WithParallel...); the cache
// policy is forced to HeapOnly (cached payloads describe latest state).
// It does NOT see this transaction's own staged writes. Cursors must be
// drained or closed before Commit/Abort — finishing the transaction
// releases the snapshot that protects their versions from GC.
func (tx *Txn) Query(t *Table, opts ...QueryOption) (*Cursor, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	withSnap := make([]QueryOption, 0, len(opts)+1)
	withSnap = append(withSnap, opts...)
	withSnap = append(withSnap, withSnapshot(tx.startTS))
	return t.Query(withSnap...)
}

// Abort discards the staged writes and releases the snapshot.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.e.releaseSnapshot(tx.startTS)
	tx.e.maybeGC()
}

// Commit applies every staged op atomically: one commit timestamp, one
// WAL record (so recovery replays the transaction whole or not at all),
// and visibility flips for every reader at the instant the clock
// publishes. Returns ErrTxnConflict (wrapped) when a staged target was
// modified since Begin, or a duplicate-key error when a claimed unique
// key is held by a live committed row this transaction does not
// replace. On any failure — validation, a mid-commit heap or index
// error, a WAL append error — nothing stays applied: effects that had
// already landed are rolled back before the commit gate drops, and the
// unpublished timestamp is free for reuse. The one exception is a
// group-commit fsync failure after the clock published: the commit is
// visible in memory but may not survive a crash (the same contract as
// a raw Apply whose fsync fails).
//
// nblb:commit-entry — the audited txn commit critical section.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.done = true
	e := tx.e
	defer func() {
		e.releaseSnapshot(tx.startTS)
		e.maybeGC()
	}()
	if len(tx.tables) == 0 {
		return nil
	}

	e.txnMu.Lock()
	defer e.txnMu.Unlock()
	ts := e.clock.Load() + 1

	// First-committer-wins: every staged update/delete target must still
	// be the version this transaction read — not superseded, not deleted
	// — by any transaction that committed after our snapshot.
	for _, tt := range tx.tables {
		vs := &tt.t.vers
		vs.mu.RLock()
		for i := range tt.ops {
			op := &tt.ops[i]
			if op.kind == BatchInsert {
				continue
			}
			if m, ok := vs.m[op.rid]; ok && (m.dead != 0 || m.born > tx.startTS) {
				vs.mu.RUnlock()
				return fmt.Errorf("%w: row %v modified since the transaction began", ErrTxnConflict, op.rid)
			}
		}
		vs.mu.RUnlock()
	}

	// Claimed unique keys must not collide with live committed rows,
	// unless this transaction itself frees the key. Under txnMu this
	// verdict cannot be invalidated by another transaction.
	for k, c := range tx.claimed {
		v, found, err := c.ix.tree.Search(c.entry)
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		if _, freed := tx.freed[k]; freed {
			continue
		}
		if c.ix.table.ridVisible(storage.UnpackRID(v), snapLatest) {
			return fmt.Errorf("core: index %q: duplicate key (op %d of batch %d)", c.ix.name, c.op, c.batch)
		}
	}

	// The gate is taken even without a WAL: RunGC holds it exclusively
	// and relies on it to serialize against commit effects and entry
	// upserts (checkpoints additionally rely on it for clock/meta
	// consistency).
	e.commitGate.RLock()
	undo, err := tx.commitEffects(ts)
	var lsn uint64
	if err == nil && e.wal != nil {
		payload := tx.encodeTxnRecord(ts)
		if lsn, err = e.wal.Append(recTxn, payload); err == nil {
			wal.TestPoint("txn:appended")
		}
	}
	// Publish the clock before the gate drops so a checkpoint can never
	// snapshot the new versions' metadata against the old clock. On
	// error, roll the landed effects back before the gate drops instead:
	// the same gated section that made the partial state briefly
	// reachable guarantees no checkpoint or GC ever observes it, so the
	// failed commit leaves no trace and ts (never published) is safely
	// allocated again by the next committer.
	if err == nil {
		e.clock.Store(ts)
	} else {
		tx.rollbackEffects(ts, undo)
	}
	e.commitGate.RUnlock()
	if err != nil {
		return err
	}
	if lsn != 0 {
		if cerr := e.walCommit(lsn); cerr != nil {
			return cerr
		}
	}
	if e.wal != nil {
		e.maybeCheckpoint()
	}
	return nil
}

// tableUndo records one table's landed commit effects so a mid-commit
// failure can roll them back: how many ops' heap writes and meta flips
// landed, the counters already bumped, and every index-tree mutation
// in landing order.
type tableUndo struct {
	tt      *txnTable
	heapOps int   // ops whose heap write + version meta landed
	delta   int64 // rows-counter delta already applied
	dead    int   // deadVersions increments already applied
	entries []entryUndo
}

// entryUndo reverses one landed index-tree mutation: restore key to the
// packed RID it held before (restore), or delete the fresh entry.
type entryUndo struct {
	ix      *Index
	key     []byte
	val     uint64
	restore bool
}

// testCommitFailAfter > 0 makes commitEffects fail with an injected
// error just before the n-th staged heap op lands — test support for
// the rollback path. 0 disables injection.
var testCommitFailAfter atomic.Int64

// errInjectedCommitFailure is the error TestingFailCommitAfter injects.
var errInjectedCommitFailure = errors.New("core: injected commit failure")

// TestingFailCommitAfter arms a one-shot commitEffects failure just
// before the n-th staged heap op (across tables, in commit order)
// lands, exercising the mid-commit rollback. n = 0 disarms. Test
// support only.
func TestingFailCommitAfter(n int) { testCommitFailAfter.Store(int64(n)) }

// commitEffects lands the staged writes: new heap versions, version
// metadata, and index maintenance, per table. Caller holds txnMu and
// commitGate shared. The returned undo list records exactly what
// landed — on error the caller MUST run rollbackEffects with it before
// the gate drops.
//
// Per table the order is: all heap inserts and meta flips under the
// version store's exclusive lock, then index entries. A heap scanner
// that finds a new row in its page snapshot therefore always finds its
// meta too (the insert and the meta land inside one exclusive section,
// and the scanner's read lock can only be granted after it), and an
// index reader that finds a new entry finds the meta that was published
// before the entry (meta-before-entry ordering).
func (tx *Txn) commitEffects(ts uint64) ([]*tableUndo, error) {
	e := tx.e
	var undo []*tableUndo
	for _, tt := range tx.tables {
		t := tt.t
		u := &tableUndo{tt: tt}
		undo = append(undo, u)
		t.mu.RLock()
		vs := &t.vers
		vs.mu.Lock()
		var delta int64
		for i := range tt.ops {
			op := &tt.ops[i]
			if v := testCommitFailAfter.Load(); v != 0 {
				if v == 1 {
					testCommitFailAfter.Store(0)
					vs.mu.Unlock()
					t.mu.RUnlock()
					return undo, errInjectedCommitFailure
				}
				testCommitFailAfter.Store(v - 1)
			}
			switch op.kind {
			case BatchInsert:
				rid, err := t.file.Insert(op.rec)
				if err != nil {
					vs.mu.Unlock()
					t.mu.RUnlock()
					return undo, fmt.Errorf("core: txn commit insert: %w", err)
				}
				op.newRID = rid
				vs.set(rid, versionMeta{born: ts})
				delta++
			case BatchUpdate:
				rid, err := t.file.Insert(op.rec)
				if err != nil {
					vs.mu.Unlock()
					t.mu.RUnlock()
					return undo, fmt.Errorf("core: txn commit update: %w", err)
				}
				op.newRID = rid
				vs.set(rid, versionMeta{born: ts, prev: op.rid.Pack()})
				vs.markDead(op.rid, ts)
				e.deadVersions.Add(1)
				u.dead++
			case BatchDelete:
				vs.markDead(op.rid, ts)
				e.deadVersions.Add(1)
				u.dead++
				delta--
			}
			u.heapOps = i + 1
		}
		vs.mu.Unlock()
		t.rows.Add(delta)
		u.delta = delta

		for i := range tt.ops {
			op := &tt.ops[i]
			if op.kind == BatchDelete {
				// Entries stay for snapshot readers; GC removes them with
				// the version. Invalidate cached payloads now.
				for _, ix := range t.indexes {
					if ix.cache != nil {
						if key, err := ix.entryKey(op.oldRow, op.rid); err == nil {
							ix.cache.NotifyUpdate(key)
						}
					}
				}
				continue
			}
			for _, ix := range t.indexes {
				if err := ix.commitEntry(op, ts, u); err != nil {
					t.mu.RUnlock()
					return undo, err
				}
			}
		}
		t.mu.RUnlock()
	}
	return undo, nil
}

// rollbackEffects undoes a failed commit's landed effects, newest table
// first. Caller still holds txnMu and commitGate shared — the same
// section the effects landed under, so neither a checkpoint nor GC can
// observe the intermediate state, and the in-flight readers that could
// are handled below.
//
// Per table the reversal is index entries first (fresh entries deleted,
// clobbered unique entries restored to the version they pointed at),
// then heap rows and version metas under one exclusive vers.mu section.
// A failed commit's new version is not erased from the version store
// but tombstoned dead-at-birth ({born: ts, dead: ts, prev:
// tombstonePrev}): born == dead fails the visibility rule for every
// snapshot and for latest reads, so a heap scanner that copied the
// row's bytes before the rollback still judges it invisible — the GC
// tombstone argument exactly. Staged update/delete targets get their
// dead stamp cleared, restoring the pre-commit meta (markDead preserved
// born and prev).
func (tx *Txn) rollbackEffects(ts uint64, undo []*tableUndo) {
	e := tx.e
	for k := len(undo) - 1; k >= 0; k-- {
		u := undo[k]
		tt := u.tt
		t := tt.t
		t.mu.RLock()
		for j := len(u.entries) - 1; j >= 0; j-- {
			eu := &u.entries[j]
			if eu.restore {
				eu.ix.tree.Insert(eu.key, eu.val)
			} else {
				eu.ix.tree.Delete(eu.key)
			}
			if eu.ix.cache != nil {
				eu.ix.cache.NotifyUpdate(eu.key)
			}
		}
		vs := &t.vers
		vs.mu.Lock()
		for i := 0; i < u.heapOps; i++ {
			op := &tt.ops[i]
			switch op.kind {
			case BatchInsert, BatchUpdate:
				// Delete-then-tombstone inside one exclusive section: a
				// scanner that copied the bytes checks the meta after this
				// lock and sees dead-at-birth; nothing chains to newRID
				// (its own prev is overwritten), so slot reuse is safe.
				t.file.Delete(op.newRID)
				vs.set(op.newRID, versionMeta{born: ts, dead: ts, prev: tombstonePrev})
				if op.kind == BatchUpdate {
					m := vs.m[op.rid]
					m.dead = 0
					vs.set(op.rid, m)
				}
			case BatchDelete:
				m := vs.m[op.rid]
				m.dead = 0
				vs.set(op.rid, m)
			}
		}
		vs.mu.Unlock()
		t.rows.Add(-u.delta)
		e.deadVersions.Add(int64(-u.dead))
	}
}

// commitEntry installs the index entry for a staged insert/update's new
// version, recording the reversal in u. Old entries are left in place
// for snapshot readers (GC unlinks them); unique indexes chain through
// a dead previous holder of the key so per-key time travel keeps
// working across key reuse.
func (ix *Index) commitEntry(op *txnOp, ts uint64, u *tableUndo) error {
	newKey, err := ix.entryKey(op.row, op.newRID)
	if err != nil {
		return err
	}
	if !ix.unique {
		if _, err := ix.tree.Insert(newKey, op.newRID.Pack()); err != nil {
			return err
		}
		u.entries = append(u.entries, entryUndo{ix: ix, key: newKey})
		if ix.cache != nil {
			ix.cache.NotifyUpdate(newKey)
		}
		return nil
	}
	var oldKey []byte
	if op.kind == BatchUpdate {
		if oldKey, err = ix.entryKey(op.oldRow, op.rid); err != nil {
			return err
		}
		if string(oldKey) == string(newKey) {
			// Key unchanged: the entry upserts to the newest version and
			// snapshot readers hop the prev chain back. Undo restores the
			// entry to the superseded version it pointed at.
			if _, err := ix.tree.Insert(newKey, op.newRID.Pack()); err != nil {
				return err
			}
			u.entries = append(u.entries, entryUndo{ix: ix, key: newKey, val: op.rid.Pack(), restore: true})
			if ix.cache != nil {
				ix.cache.NotifyUpdate(newKey)
			}
			return nil
		}
	}
	// Fresh claim of this key. If a dead previous holder still occupies
	// the entry, clobber it and chain to it — the commit pre-check
	// guarantees a live occupant cannot be here.
	if v, found, serr := ix.tree.Search(newKey); serr != nil {
		return serr
	} else if found {
		prev := storage.UnpackRID(v)
		vs := &ix.table.vers
		vs.mu.Lock()
		m := vs.m[op.newRID]
		m.born = ts
		m.prev = prev.Pack()
		vs.set(op.newRID, m)
		vs.mu.Unlock()
		if _, err := ix.tree.Insert(newKey, op.newRID.Pack()); err != nil {
			return err
		}
		u.entries = append(u.entries, entryUndo{ix: ix, key: newKey, val: v, restore: true})
	} else {
		if _, err := ix.tree.InsertIfAbsent(newKey, op.newRID.Pack()); err != nil {
			return err
		}
		u.entries = append(u.entries, entryUndo{ix: ix, key: newKey})
	}
	if ix.cache != nil {
		ix.cache.NotifyUpdate(newKey)
		if oldKey != nil {
			ix.cache.NotifyUpdate(oldKey)
		}
	}
	return nil
}

// encodeTxnRecord builds the recTxn payload: the commit timestamp and
// each touched table's actions in the recBatch sub-format. The actions
// encode the transaction's FINAL, post-GC physical state — updates as
// remove-old/put-new, deletes as removals, obsolete index entries as
// deletions — so replay flattens the version history away entirely (no
// snapshot survives a crash, so recovered state needs none of it).
func (tx *Txn) encodeTxnRecord(ts uint64) []byte {
	e := tx.e
	wb := e.getWALBatch("")
	defer e.putWALBatch(wb)
	payload := binary.AppendUvarint(nil, ts)
	payload = binary.AppendUvarint(payload, uint64(len(tx.tables)))
	for _, tt := range tx.tables {
		t := tt.t
		wb.reset(t.name)
		for i := range tt.ops {
			op := &tt.ops[i]
			switch op.kind {
			case BatchInsert:
				wb.put(op.newRID, op.newRID, op.rec)
			case BatchUpdate:
				wb.put(op.rid, op.newRID, op.rec)
			case BatchDelete:
				wb.del(op.rid)
			}
		}
		t.mu.RLock()
		for i := range tt.ops {
			op := &tt.ops[i]
			for _, ix := range t.indexes {
				switch op.kind {
				case BatchInsert:
					if key, err := ix.entryKey(op.row, op.newRID); err == nil {
						wb.idx(ix.name, btree.RunEntry{Key: key, Value: op.newRID.Pack(), Op: btree.RunUpsert})
					}
				case BatchUpdate:
					oldKey, oerr := ix.entryKey(op.oldRow, op.rid)
					newKey, nerr := ix.entryKey(op.row, op.newRID)
					if oerr != nil || nerr != nil {
						continue
					}
					if string(oldKey) != string(newKey) {
						wb.idx(ix.name, btree.RunEntry{Key: oldKey, Op: btree.RunDelete})
					}
					wb.idx(ix.name, btree.RunEntry{Key: newKey, Value: op.newRID.Pack(), Op: btree.RunUpsert})
				case BatchDelete:
					if key, err := ix.entryKey(op.oldRow, op.rid); err == nil {
						wb.idx(ix.name, btree.RunEntry{Key: key, Op: btree.RunDelete})
					}
				}
			}
		}
		t.mu.RUnlock()
		sub := wb.payload()
		payload = binary.AppendUvarint(payload, uint64(len(sub)))
		payload = append(payload, sub...)
	}
	return payload
}
