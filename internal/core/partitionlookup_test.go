package core

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// Additional index edge-case coverage: composite keys with NULLs,
// range-style LookupAll prefixes, and index maintenance across the
// full CRUD lifecycle of a row.

func TestLookupWithNullKeyComponent(t *testing.T) {
	e := newTestEngine(t)
	schema := tuple.MustSchema(
		tuple.Field{Name: "a", Kind: tuple.KindInt32},
		tuple.Field{Name: "b", Kind: tuple.KindString, Size: 16},
		tuple.Field{Name: "v", Kind: tuple.KindInt64},
	)
	tb, err := e.CreateTable("t", schema)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	ix, err := tb.CreateIndex("ab", []string{"a", "b"}, WithCache("v"))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rows := []tuple.Row{
		{tuple.Null(tuple.KindInt32), tuple.String("x"), tuple.Int64(1)},
		{tuple.Int32(0), tuple.Null(tuple.KindString), tuple.Int64(2)},
		{tuple.Int32(0), tuple.String("x"), tuple.Int64(3)},
	}
	for _, r := range rows {
		if _, err := tb.Insert(r); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for _, r := range rows {
		row, res, err := ix.Lookup([]string{"v"}, r[0], r[1])
		if err != nil || !res.Found {
			t.Fatalf("Lookup(%v,%v): %+v %v", r[0], r[1], res, err)
		}
		if row[0].Int != r[2].Int {
			t.Errorf("wrong row for (%v,%v): %d", r[0], r[1], row[0].Int)
		}
	}
}

func TestLookupAllPrefixDoesNotBleed(t *testing.T) {
	e := newTestEngine(t)
	schema := tuple.MustSchema(
		tuple.Field{Name: "grp", Kind: tuple.KindString, Size: 8},
		tuple.Field{Name: "n", Kind: tuple.KindInt32},
	)
	tb, _ := e.CreateTable("t", schema)
	ix, err := tb.CreateIndex("grp", []string{"grp"}, NonUnique())
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	// "a" and "ab" are distinct groups; prefix scans must not conflate.
	for i := 0; i < 5; i++ {
		tb.Insert(tuple.Row{tuple.String("a"), tuple.Int32(int32(i))})
	}
	for i := 0; i < 3; i++ {
		tb.Insert(tuple.Row{tuple.String("ab"), tuple.Int32(int32(i))})
	}
	rows, err := ix.LookupAll(tuple.String("a"))
	if err != nil {
		t.Fatalf("LookupAll: %v", err)
	}
	if len(rows) != 5 {
		t.Errorf("group \"a\" returned %d rows, want 5", len(rows))
	}
	rows, err = ix.LookupAll(tuple.String("ab"))
	if err != nil {
		t.Fatalf("LookupAll: %v", err)
	}
	if len(rows) != 3 {
		t.Errorf("group \"ab\" returned %d rows, want 3", len(rows))
	}
	rows, err = ix.LookupAll(tuple.String("zzz"))
	if err != nil || len(rows) != 0 {
		t.Errorf("missing group returned %d rows, err=%v", len(rows), err)
	}
}

func TestIndexMaintainedAcrossFullLifecycle(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev", "len"))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	// Insert → lookup → key-changing update → lookup via both keys →
	// delete → lookup.
	rid, err := tb.Insert(pageRow(1))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	oldKey := []tuple.Value{tuple.Int32(0), tuple.String("Title_00001")}
	newKey := []tuple.Value{tuple.Int32(0), tuple.String("Renamed")}
	if _, res, _ := ix.Lookup(nil, oldKey...); !res.Found {
		t.Fatal("inserted row not found")
	}
	renamed := pageRow(1)
	renamed[2] = tuple.String("Renamed")
	rid, err = tb.Update(rid, renamed)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, res, _ := ix.Lookup(nil, oldKey...); res.Found {
		t.Error("old key still resolves after rename")
	}
	row, res, err := ix.Lookup(nil, newKey...)
	if err != nil || !res.Found {
		t.Fatalf("new key not found: %+v %v", res, err)
	}
	if row[2].Str != "Renamed" {
		t.Errorf("row content wrong: %v", row[2])
	}
	if err := tb.Delete(rid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, res, _ := ix.Lookup(nil, newKey...); res.Found {
		t.Error("deleted row still found")
	}
	if err := ix.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}
}

func TestManyIndexesOnOneTable(t *testing.T) {
	e := newTestEngine(t)
	tb, _ := e.CreateTable("page", pagesSchema())
	pk, err := tb.CreateIndex("pk", []string{"page_id"}, WithCache("len"))
	if err != nil {
		t.Fatalf("pk: %v", err)
	}
	nt, err := tb.CreateIndex("name_title", []string{"namespace", "title"}, WithCache("latest_rev"))
	if err != nil {
		t.Fatalf("name_title: %v", err)
	}
	byLen, err := tb.CreateIndex("by_len", []string{"len"}, NonUnique())
	if err != nil {
		t.Fatalf("by_len: %v", err)
	}
	for i := 0; i < 150; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Every index answers consistently.
	for i := 0; i < 150; i += 13 {
		row1, res, err := pk.Lookup(nil, tuple.Int64(int64(i)))
		if err != nil || !res.Found {
			t.Fatalf("pk lookup %d: %v", i, err)
		}
		row2, res2, err := nt.Lookup(nil, tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i)))
		if err != nil || !res2.Found {
			t.Fatalf("nt lookup %d: %v", i, err)
		}
		if !row1.Equal(row2) {
			t.Errorf("indexes disagree on row %d", i)
		}
	}
	rows, err := byLen.LookupAll(tuple.Int32(100))
	if err != nil || len(rows) != 1 {
		t.Errorf("by_len: %d rows, err=%v", len(rows), err)
	}
	// Delete through one index; all must forget the row.
	rid, _, _ := pk.LookupRID(tuple.Int64(7))
	if err := tb.Delete(rid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, res, _ := pk.Lookup(nil, tuple.Int64(7)); res.Found {
		t.Error("pk still finds deleted row")
	}
	if _, res, _ := nt.Lookup(nil, tuple.Int32(0), tuple.String("Title_00007")); res.Found {
		t.Error("name_title still finds deleted row")
	}
}
