package txntest

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// schedules returns how many randomized schedules to run. CI's txn job
// raises it via TXN_SCHEDULES (acceptance: 10k with zero divergence);
// the default keeps `go test ./...` quick.
func schedules(def int) int {
	if v := os.Getenv("TXN_SCHEDULES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestSeedCorpus replays the committed seed corpus — schedules that
// once mattered (first seeds, shrinker exercises, high-collision
// shapes) — deterministically on every CI run.
func TestSeedCorpus(t *testing.T) {
	f, err := os.Open("testdata/seeds.txt")
	if err != nil {
		t.Fatalf("open seed corpus: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seed, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			t.Fatalf("corpus line %q: %v", line, err)
		}
		if d := Run(seed, Config{}); d != nil {
			t.Fatalf("corpus seed %d diverged:\n%v", seed, d)
		}
		// Replay under the storm shape too: seed 550 found a GC
		// prev-chain cycle only this config's key pressure exposed.
		if d := Run(seed, Config{Slots: 6, Keys: 6, Steps: 120, MaxBatch: 6}); d != nil {
			t.Fatalf("corpus seed %d (storm config) diverged:\n%v", seed, d)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read seed corpus: %v", err)
	}
	if n == 0 {
		t.Fatal("seed corpus is empty")
	}
}

// TestRandomSchedules runs the model checker over sequentially-derived
// seeds. Every divergence report includes the shrunk schedule, so a CI
// failure is directly actionable.
func TestRandomSchedules(t *testing.T) {
	n := schedules(300)
	for seed := int64(0); seed < int64(n); seed++ {
		if d := Run(seed, Config{}); d != nil {
			t.Fatalf("schedule diverged:\n%v", d)
		}
	}
}

// TestRandomSchedulesLongStorms mixes in a few larger shapes — more
// steps, tighter key space — that stress GC and chain depth harder than
// the default config.
func TestRandomSchedulesLongStorms(t *testing.T) {
	n := schedules(300) / 10
	if n < 10 {
		n = 10
	}
	cfg := Config{Slots: 6, Keys: 6, Steps: 120, MaxBatch: 6}
	for seed := int64(0); seed < int64(n); seed++ {
		if d := Run(seed, cfg); d != nil {
			t.Fatalf("long-storm schedule diverged:\n%v", d)
		}
	}
}

// TestHarnessDetectsInvertedVisibility is the teeth test: sabotage the
// engine's snapshot visibility rule (born <= snap becomes born > snap)
// and require the harness to catch it. A harness that stays green
// against a broken engine proves nothing.
func TestHarnessDetectsInvertedVisibility(t *testing.T) {
	core.TestingSetInvertVisibility(true)
	defer core.TestingSetInvertVisibility(false)
	for seed := int64(0); seed < 50; seed++ {
		if d := Run(seed, Config{}); d != nil {
			t.Logf("harness caught the sabotage (seed %d, step %d): %s", d.Seed, d.Step, d.Detail)
			if len(d.Schedule) == 0 {
				t.Fatal("divergence reported with an empty schedule")
			}
			return
		}
	}
	t.Fatal("harness failed to detect inverted snapshot visibility in 50 schedules")
}

// TestShrinkerMinimizes checks the failing-schedule shrinker: the
// reported reproduction must be no longer than the generated schedule
// and must still fail when re-executed.
func TestShrinkerMinimizes(t *testing.T) {
	core.TestingSetInvertVisibility(true)
	defer core.TestingSetInvertVisibility(false)
	for seed := int64(0); seed < 50; seed++ {
		d := Run(seed, Config{})
		if d == nil {
			continue
		}
		full := Generate(seed, Config{})
		if len(d.Schedule) > len(full) {
			t.Fatalf("shrunk schedule longer than original: %d > %d", len(d.Schedule), len(full))
		}
		if again := execute(seed, d.Schedule); again == nil {
			t.Fatalf("shrunk schedule no longer fails:\n%s", FormatSchedule(d.Schedule))
		}
		// A minimal schedule should be meaningfully smaller than a full
		// 40-step one for a visibility bug (a begin, a stage, a commit,
		// and a read suffice). Allow slack but reject no-op shrinking.
		if len(d.Schedule) > len(full)/2 {
			t.Fatalf("shrinker removed too little: %d of %d steps remain:\n%s",
				len(d.Schedule), len(full), FormatSchedule(d.Schedule))
		}
		t.Logf("seed %d shrank %d -> %d steps", seed, len(full), len(d.Schedule))
		return
	}
	t.Fatal("no failing schedule found to shrink")
}

// TestGenerateDeterministic pins schedule derivation: same seed, same
// schedule — the property the committed corpus depends on.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := fmt.Sprint(Generate(seed, Config{}))
		b := fmt.Sprint(Generate(seed, Config{}))
		if a != b {
			t.Fatalf("seed %d generated two different schedules", seed)
		}
	}
}
