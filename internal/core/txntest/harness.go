// Package txntest is a model-checking harness for the engine's MVCC
// snapshot transactions. It executes randomized schedules of
// transaction steps — begins, staged batches, commits, aborts,
// snapshot and latest reads, GC passes — against a real engine AND
// against a sequential in-memory oracle, and asserts that every
// observed read is the one a serial execution at the reader's snapshot
// would have produced, and that every commit verdict (success,
// conflict, duplicate) is the one first-committer-wins prescribes.
//
// On divergence the harness shrinks the failing schedule to a minimal
// reproduction by greedy delta-debugging (drop a step, re-run from
// scratch, keep the drop while the failure persists) before reporting.
// Schedules derive deterministically from a seed, so the committed seed
// corpus replays identically in CI.
package txntest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/tuple"
)

// StepKind enumerates schedule steps.
type StepKind uint8

const (
	StepBegin      StepKind = iota // open transaction in slot
	StepStage                      // stage one batch of writes in slot
	StepCommit                     // commit slot
	StepAbort                      // abort slot
	StepRead                       // snapshot read in slot, via Mode
	StepReadLatest                 // non-transactional read, via Mode
	StepGC                         // run a full GC pass
)

// ReadMode selects the read path a StepRead/StepReadLatest exercises —
// visibility must hold on every one of them.
type ReadMode uint8

const (
	ReadHeap      ReadMode = iota // heap-order scan
	ReadUnique                    // unique-index scan (version chains)
	ReadNonUnique                 // non-unique-index scan (per-RID)
	ReadParallel                  // parallel segmented scan over the unique index
	readModes
)

func (m ReadMode) String() string {
	switch m {
	case ReadHeap:
		return "heap"
	case ReadUnique:
		return "uniq"
	case ReadNonUnique:
		return "nonuniq"
	case ReadParallel:
		return "par"
	}
	return fmt.Sprintf("mode%d", uint8(m))
}

// Step is one schedule entry. Keys for StepStage are key *candidates*:
// the executor decides insert/update/delete per key from the model
// state at execution time, so a schedule stays well-formed under
// shrinking.
type Step struct {
	Kind StepKind
	Slot int
	Mode ReadMode
	Keys []int64
	Dels uint64 // bitmask over Keys: prefer delete for these candidates
}

func (s Step) String() string {
	switch s.Kind {
	case StepBegin:
		return fmt.Sprintf("begin(%d)", s.Slot)
	case StepStage:
		parts := make([]string, len(s.Keys))
		for i, k := range s.Keys {
			verb := "put"
			if s.Dels&(1<<uint(i)) != 0 {
				verb = "del"
			}
			parts[i] = fmt.Sprintf("%s:%d", verb, k)
		}
		return fmt.Sprintf("stage(%d, %s)", s.Slot, strings.Join(parts, " "))
	case StepCommit:
		return fmt.Sprintf("commit(%d)", s.Slot)
	case StepAbort:
		return fmt.Sprintf("abort(%d)", s.Slot)
	case StepRead:
		return fmt.Sprintf("read(%d, %s)", s.Slot, s.Mode)
	case StepReadLatest:
		return fmt.Sprintf("readLatest(%s)", s.Mode)
	case StepGC:
		return "gc()"
	}
	return fmt.Sprintf("step%d", s.Kind)
}

// FormatSchedule renders a schedule one step per line — the shape a
// failure report embeds.
func FormatSchedule(steps []Step) string {
	var b strings.Builder
	for i, s := range steps {
		fmt.Fprintf(&b, "  %3d: %s\n", i, s)
	}
	return b.String()
}

// Config bounds schedule generation.
type Config struct {
	Slots    int // concurrent transaction slots (default 4)
	Keys     int // key space size (default 12)
	Steps    int // schedule length (default 40)
	MaxBatch int // max write candidates per stage step (default 4)
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Keys <= 0 {
		c.Keys = 12
	}
	if c.Steps <= 0 {
		c.Steps = 40
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	return c
}

// Generate derives a schedule deterministically from seed.
func Generate(seed int64, cfg Config) []Step {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	steps := make([]Step, 0, cfg.Steps)
	open := make([]bool, cfg.Slots)
	for len(steps) < cfg.Steps {
		slot := rng.Intn(cfg.Slots)
		switch r := rng.Intn(100); {
		case r < 20:
			if !open[slot] {
				open[slot] = true
				steps = append(steps, Step{Kind: StepBegin, Slot: slot})
			}
		case r < 50:
			if open[slot] {
				n := 1 + rng.Intn(cfg.MaxBatch)
				st := Step{Kind: StepStage, Slot: slot, Keys: make([]int64, n)}
				for i := range st.Keys {
					st.Keys[i] = int64(rng.Intn(cfg.Keys))
					if rng.Intn(3) == 0 {
						st.Dels |= 1 << uint(i)
					}
				}
				steps = append(steps, st)
			}
		case r < 65:
			if open[slot] {
				open[slot] = false
				steps = append(steps, Step{Kind: StepCommit, Slot: slot})
			}
		case r < 70:
			if open[slot] {
				open[slot] = false
				steps = append(steps, Step{Kind: StepAbort, Slot: slot})
			}
		case r < 85:
			if open[slot] {
				steps = append(steps, Step{Kind: StepRead, Slot: slot, Mode: ReadMode(rng.Intn(int(readModes)))})
			}
		case r < 95:
			steps = append(steps, Step{Kind: StepReadLatest, Mode: ReadMode(rng.Intn(int(readModes)))})
		default:
			steps = append(steps, Step{Kind: StepGC})
		}
	}
	return steps
}

// oracleVersion is one committed write in the model's history.
type oracleVersion struct {
	ts      uint64
	val     int64
	deleted bool
}

// oracle is the sequential model: full per-key version history, built
// only from commits the engine acknowledged.
type oracle struct {
	ts   uint64
	hist map[int64][]oracleVersion
}

func newOracle() *oracle {
	return &oracle{hist: make(map[int64][]oracleVersion)}
}

// asOf returns the committed k→v state visible at snapshot ts.
func (o *oracle) asOf(ts uint64) map[int64]int64 {
	out := make(map[int64]int64)
	for k, vs := range o.hist {
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].ts <= ts {
				if !vs[i].deleted {
					out[k] = vs[i].val
				}
				break
			}
		}
	}
	return out
}

// liveAt reports whether k is live in the committed state at ts.
func (o *oracle) liveAt(k int64, ts uint64) (int64, bool) {
	vs := o.hist[k]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].ts <= ts {
			return vs[i].val, !vs[i].deleted
		}
	}
	return 0, false
}

// lastWrite returns the timestamp of k's newest committed write (0 if
// never written).
func (o *oracle) lastWrite(k int64) uint64 {
	if vs := o.hist[k]; len(vs) > 0 {
		return vs[len(vs)-1].ts
	}
	return 0
}

// stagedWrite is one write the executor staged through the engine.
type stagedWrite struct {
	key    int64
	val    int64
	insert bool
	delete bool
}

// slotState is one open transaction's model-side mirror.
type slotState struct {
	txn     *core.Txn
	startTS uint64
	writes  []stagedWrite
	byKey   map[int64]*stagedWrite // latest staged fate per key
}

// Divergence is a model/engine mismatch, with the (possibly shrunk)
// schedule that reproduces it.
type Divergence struct {
	Seed     int64
	Step     int
	Detail   string
	Schedule []Step
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("txntest: seed %d diverged at step %d: %s\nschedule:\n%s",
		d.Seed, d.Step, d.Detail, FormatSchedule(d.Schedule))
}

// Run executes the schedule for seed against a fresh engine and the
// oracle. On divergence it shrinks the schedule to a minimal failing
// reproduction and returns the Divergence; nil means the schedule
// passed.
func Run(seed int64, cfg Config) *Divergence {
	steps := Generate(seed, cfg)
	d := execute(seed, steps)
	if d == nil {
		return nil
	}
	d.Schedule = shrink(seed, steps)
	// Re-run the shrunk schedule to report its (possibly different)
	// failing step and detail.
	if sd := execute(seed, d.Schedule); sd != nil {
		sd.Schedule = d.Schedule
		return sd
	}
	return d // shrink raced into passing (should not happen; report original)
}

// shrink greedily removes steps while the failure persists.
func shrink(seed int64, steps []Step) []Step {
	cur := append([]Step(nil), steps...)
	for {
		removed := false
		for i := 0; i < len(cur); i++ {
			cand := make([]Step, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if execute(seed, cand) != nil {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			return cur
		}
	}
}

// execute runs one schedule against a fresh in-memory engine, mirroring
// every acknowledged effect into the oracle and validating reads and
// commit verdicts. Returns the first divergence, or nil.
func execute(seed int64, steps []Step) *Divergence {
	e, err := core.NewEngine(core.Options{PageSize: 1024, BufferPoolPages: 512})
	if err != nil {
		return &Divergence{Seed: seed, Detail: fmt.Sprintf("NewEngine: %v", err), Schedule: steps}
	}
	defer e.Close()
	tb, err := e.CreateTable("kv", tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.KindInt64},
		tuple.Field{Name: "v", Kind: tuple.KindInt64},
	))
	if err != nil {
		return &Divergence{Seed: seed, Detail: fmt.Sprintf("CreateTable: %v", err), Schedule: steps}
	}
	byK, err := tb.CreateIndex("by_k", []string{"k"})
	if err != nil {
		return &Divergence{Seed: seed, Detail: fmt.Sprintf("CreateIndex: %v", err), Schedule: steps}
	}
	if _, err := tb.CreateIndex("by_v", []string{"v"}, core.NonUnique()); err != nil {
		return &Divergence{Seed: seed, Detail: fmt.Sprintf("CreateIndex by_v: %v", err), Schedule: steps}
	}

	o := newOracle()
	slots := make(map[int]*slotState)
	var vCounter int64
	fail := func(i int, format string, args ...any) *Divergence {
		return &Divergence{Seed: seed, Step: i, Detail: fmt.Sprintf(format, args...), Schedule: steps}
	}

	for i, st := range steps {
		switch st.Kind {
		case StepBegin:
			if slots[st.Slot] != nil {
				continue // shrinking artifact: slot already open
			}
			slots[st.Slot] = &slotState{
				txn:     e.Begin(),
				startTS: o.ts,
				byKey:   make(map[int64]*stagedWrite),
			}

		case StepStage:
			s := slots[st.Slot]
			if s == nil {
				continue
			}
			// Decide each candidate's verb from committed-as-of-start
			// state plus this transaction's own staged fate, mirroring
			// what a well-formed client would do. Keys already staged are
			// skipped (a second write to the same row is a client error
			// the attribution unit tests cover).
			var b core.Batch
			var writes []stagedWrite
			staged := make(map[int64]bool)
			for ki, k := range st.Keys {
				if staged[k] || s.byKey[k] != nil {
					continue
				}
				_, live := o.liveAt(k, s.startTS)
				if live {
					// The target row must still be the committed-latest one
					// for LookupRID to find it; a concurrent commit makes
					// this transaction doomed to conflict anyway, and the
					// rid we stage is then the NEW one — which has
					// born > startTS, so the conflict still fires. Use the
					// engine's own lookup to stay physical.
					rid, found, lerr := byK.LookupRID(tuple.Int64(k))
					if lerr != nil {
						return fail(i, "LookupRID(%d): %v", k, lerr)
					}
					if !found {
						// Deleted after our snapshot: treat as insert; the
						// commit-time verdict check below models the outcome.
						vCounter++
						b.Insert(tuple.Row{tuple.Int64(k), tuple.Int64(vCounter)})
						writes = append(writes, stagedWrite{key: k, val: vCounter, insert: true})
						staged[k] = true
						continue
					}
					if st.Dels&(1<<uint(ki)) != 0 {
						b.Delete(rid)
						writes = append(writes, stagedWrite{key: k, delete: true})
					} else {
						vCounter++
						b.Update(rid, tuple.Row{tuple.Int64(k), tuple.Int64(vCounter)})
						writes = append(writes, stagedWrite{key: k, val: vCounter})
					}
				} else {
					vCounter++
					b.Insert(tuple.Row{tuple.Int64(k), tuple.Int64(vCounter)})
					writes = append(writes, stagedWrite{key: k, val: vCounter, insert: true})
				}
				staged[k] = true
			}
			if len(writes) == 0 {
				continue
			}
			if _, aerr := s.txn.Apply(tb, &b); aerr != nil {
				return fail(i, "well-formed stage rejected: %v", aerr)
			}
			for wi := range writes {
				w := writes[wi]
				s.writes = append(s.writes, w)
				s.byKey[w.key] = &s.writes[len(s.writes)-1]
			}

		case StepCommit:
			s := slots[st.Slot]
			if s == nil {
				continue
			}
			delete(slots, st.Slot)
			cerr := s.txn.Commit()
			// Model verdict: first-committer-wins. A staged update/delete
			// whose key was written after startTS conflicts; a staged
			// insert whose key is live at commit (and not freed by this
			// transaction) is a duplicate.
			conflict, duplicate := false, false
			for _, w := range s.writes {
				if w.insert {
					_, liveNow := o.liveAt(w.key, o.ts)
					if liveNow && !freedBy(s.writes, w.key) {
						duplicate = true
					}
					// An insert staged because the key looked dead-or-absent
					// at start conflicts if someone re-wrote it since? No:
					// inserts carry no target rid; the duplicate check above
					// is the whole rule.
					continue
				}
				if o.lastWrite(w.key) > s.startTS {
					conflict = true
				}
			}
			switch {
			case conflict:
				if !errors.Is(cerr, core.ErrTxnConflict) {
					return fail(i, "commit = %v, model says conflict (start %d)", cerr, s.startTS)
				}
			case duplicate:
				if cerr == nil || !strings.Contains(cerr.Error(), "duplicate key") {
					return fail(i, "commit = %v, model says duplicate", cerr)
				}
			default:
				if cerr != nil {
					return fail(i, "commit failed (%v), model says success (start %d)", cerr, s.startTS)
				}
				o.ts++
				for _, w := range s.writes {
					o.hist[w.key] = append(o.hist[w.key], oracleVersion{ts: o.ts, val: w.val, deleted: w.delete})
				}
			}

		case StepAbort:
			if s := slots[st.Slot]; s != nil {
				s.txn.Abort()
				delete(slots, st.Slot)
			}

		case StepRead:
			s := slots[st.Slot]
			if s == nil {
				continue
			}
			got, rerr := scan(s.txn, tb, st.Mode)
			if rerr != nil {
				return fail(i, "snapshot read (%s): %v", st.Mode, rerr)
			}
			want := o.asOf(s.startTS)
			if diff := diffStates(got, want); diff != "" {
				return fail(i, "snapshot read (%s) at ts %d diverged: %s", st.Mode, s.startTS, diff)
			}

		case StepReadLatest:
			got, rerr := scan(nil, tb, st.Mode)
			if rerr != nil {
				return fail(i, "latest read (%s): %v", st.Mode, rerr)
			}
			want := o.asOf(o.ts)
			if diff := diffStates(got, want); diff != "" {
				return fail(i, "latest read (%s) diverged: %s", st.Mode, diff)
			}

		case StepGC:
			e.RunGC()
		}
	}

	// Epilogue: abort leftovers, GC everything, and verify the final
	// state one last time on every read path.
	for _, s := range slots {
		s.txn.Abort()
	}
	e.RunGC()
	want := o.asOf(o.ts)
	for m := ReadMode(0); m < readModes; m++ {
		got, rerr := scan(nil, tb, m)
		if rerr != nil {
			return fail(len(steps), "final read (%s): %v", m, rerr)
		}
		if diff := diffStates(got, want); diff != "" {
			return fail(len(steps), "final read (%s) after GC diverged: %s", m, diff)
		}
	}
	return nil
}

// freedBy reports whether the write set deletes key before (without a
// later re-insert making it the live claim — the staged slice is in
// stage order, so the last fate wins).
func freedBy(writes []stagedWrite, key int64) bool {
	for _, w := range writes {
		if w.key == key && w.delete {
			return true
		}
	}
	return false
}

// scan reads the full table state through one read path: via txn (as-of
// its snapshot) when txn is non-nil, latest otherwise.
func scan(txn *core.Txn, tb *core.Table, mode ReadMode) (map[int64]int64, error) {
	var opts []core.QueryOption
	switch mode {
	case ReadUnique:
		opts = append(opts, core.WithIndex("by_k"))
	case ReadNonUnique:
		opts = append(opts, core.WithIndex("by_v"))
	case ReadParallel:
		opts = append(opts, core.WithIndex("by_k"), core.WithParallel(2))
	}
	var (
		cur *core.Cursor
		err error
	)
	if txn != nil {
		cur, err = txn.Query(tb, opts...)
	} else {
		cur, err = tb.Query(opts...)
	}
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	out := make(map[int64]int64)
	for cur.Next() {
		r := cur.Row()
		k, v := r[0].Int, r[1].Int
		if old, dup := out[k]; dup {
			return nil, fmt.Errorf("key %d served twice (%d and %d)", k, old, v)
		}
		out[k] = v
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// diffStates describes the difference between two k→v states ("" when
// equal), listing keys deterministically.
func diffStates(got, want map[int64]int64) string {
	var problems []string
	keys := make(map[int64]bool)
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	ordered := make([]int64, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, k := range ordered {
		g, gok := got[k]
		w, wok := want[k]
		switch {
		case gok && !wok:
			problems = append(problems, fmt.Sprintf("key %d: engine has %d, model has nothing", k, g))
		case !gok && wok:
			problems = append(problems, fmt.Sprintf("key %d: engine missing, model has %d", k, w))
		case g != w:
			problems = append(problems, fmt.Sprintf("key %d: engine %d, model %d", k, g, w))
		}
	}
	return strings.Join(problems, "; ")
}
