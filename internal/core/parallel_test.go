package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// drainKeys drains a cursor, returning each row's encoded key (copied)
// and the first projected value, plus the final stats.
func drainKeys(t *testing.T, cur *Cursor) ([][]byte, []tuple.Row, QueryStats) {
	t.Helper()
	var keys [][]byte
	var rows []tuple.Row
	for cur.Next() {
		keys = append(keys, append([]byte(nil), cur.Key()...))
		rows = append(rows, cur.Row().Clone())
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	stats := cur.Stats()
	cur.Close()
	return keys, rows, stats
}

func TestParallelQueryMatchesSerial(t *testing.T) {
	_, _, ix := newQueryFixture(t, 6000, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	proj := WithProjection("id", "a", "b")
	serialCur, err := ix.Query(proj)
	if err != nil {
		t.Fatalf("serial Query: %v", err)
	}
	serialKeys, serialRows, serialStats := drainKeys(t, serialCur)
	if len(serialKeys) != 6000 {
		t.Fatalf("serial scanned %d rows", len(serialKeys))
	}
	for _, mode := range []MergeMode{MergeOrdered, MergeUnordered} {
		for _, n := range []int{2, 4, 7} {
			name := fmt.Sprintf("mode=%v/n=%d", mode, n)
			cur, err := ix.Query(proj, WithParallel(n), WithMergeMode(mode))
			if err != nil {
				t.Fatalf("%s: Query: %v", name, err)
			}
			keys, rows, stats := drainKeys(t, cur)
			if len(keys) != len(serialKeys) {
				t.Fatalf("%s: got %d rows, want %d", name, len(keys), len(serialKeys))
			}
			if mode == MergeOrdered {
				for i := range keys {
					if !bytes.Equal(keys[i], serialKeys[i]) {
						t.Fatalf("%s: row %d out of order: key %x want %x", name, i, keys[i], serialKeys[i])
					}
					if len(rows[i]) != 3 || rows[i][0].Int != serialRows[i][0].Int {
						t.Fatalf("%s: row %d mismatch: %v want %v", name, i, rows[i], serialRows[i])
					}
				}
			} else {
				seen := make(map[string]int, len(keys))
				for _, k := range keys {
					seen[string(k)]++
				}
				for _, k := range serialKeys {
					if seen[string(k)] != 1 {
						t.Fatalf("%s: key %x served %d times", name, k, seen[string(k)])
					}
				}
			}
			// Row-level counters sum to the serial scan's: every row is
			// answered exactly once by exactly one tier. Leaf fetches may
			// exceed serial — adjacent segments share boundary leaves.
			segStats := cur.SegmentStats()
			if len(segStats) == 0 {
				t.Fatalf("%s: no segment stats", name)
			}
			var sum QueryStats
			for _, s := range segStats {
				sum.Add(s)
			}
			if sum.Rows != serialStats.Rows || sum.CacheHits != serialStats.CacheHits || sum.HeapReads != serialStats.HeapReads {
				t.Fatalf("%s: segment stats %+v don't sum to serial %+v", name, sum, serialStats)
			}
			if sum.LeafFetches < serialStats.LeafFetches {
				t.Fatalf("%s: segment leaf fetches %d < serial %d", name, sum.LeafFetches, serialStats.LeafFetches)
			}
			if stats.Rows != serialStats.Rows {
				t.Fatalf("%s: cursor rows %d want %d", name, stats.Rows, serialStats.Rows)
			}
			if got := stats.CacheHits + stats.HeapReads; got != sum.CacheHits+sum.HeapReads {
				t.Fatalf("%s: cursor tier counters %d, segment sum %d", name, got, sum.CacheHits+sum.HeapReads)
			}
		}
	}
}

func TestParallelQueryBounded(t *testing.T) {
	_, _, ix := newQueryFixture(t, 4000, true)
	lo := []tuple.Value{tuple.Int64(713)}
	hi := []tuple.Value{tuple.Int64(2891)}
	serial, err := ix.Query(WithKeyRange(lo, hi))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	serialKeys, _, _ := drainKeys(t, serial)
	for _, mode := range []MergeMode{MergeOrdered, MergeUnordered} {
		cur, err := ix.Query(WithKeyRange(lo, hi), WithParallel(4), WithMergeMode(mode))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		keys, _, _ := drainKeys(t, cur)
		if len(keys) != len(serialKeys) {
			t.Fatalf("mode %v: got %d rows in [713,2891), want %d", mode, len(keys), len(serialKeys))
		}
	}
}

func TestParallelQueryLimit(t *testing.T) {
	_, _, ix := newQueryFixture(t, 3000, true)
	cur, err := ix.Query(WithParallel(4), WithLimit(37))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	keys, _, _ := drainKeys(t, cur)
	if len(keys) != 37 {
		t.Fatalf("ordered limit served %d rows", len(keys))
	}
	// Ordered limit is the serial prefix.
	for i, k := range keys {
		want := tuple.MustEncodeKey(tuple.Int64(int64(i)))
		if !bytes.Equal(k, want) {
			t.Fatalf("limited row %d: key %x want %x", i, k, want)
		}
	}
	cur, err = ix.Query(WithParallel(4), WithMergeMode(MergeUnordered), WithLimit(37))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	keys, _, _ = drainKeys(t, cur)
	if len(keys) != 37 {
		t.Fatalf("unordered limit served %d rows", len(keys))
	}
}

func TestParallelQueryEarlyClose(t *testing.T) {
	_, _, ix := newQueryFixture(t, 5000, true)
	for _, mode := range []MergeMode{MergeOrdered, MergeUnordered} {
		cur, err := ix.Query(WithParallel(4), WithMergeMode(mode))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		for i := 0; i < 10 && cur.Next(); i++ {
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Close must have stopped the workers; a second Close is a no-op.
		if err := cur.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

func TestParallelQueryValidation(t *testing.T) {
	_, tb, ix := newQueryFixture(t, 100, true)
	if _, err := tb.Query(WithParallel(4)); err == nil {
		t.Fatal("parallel heap scan must error")
	}
	if _, err := ix.Query(WithParallel(4), WithReverse()); err == nil {
		t.Fatal("parallel reverse must error")
	}
	if _, err := ix.Query(WithParallel(4), WithMergeMode(MergeMode(9))); err == nil {
		t.Fatal("bad merge mode must error")
	}
	// n<=1 falls back to the serial source and still works.
	cur, err := ix.Query(WithParallel(1))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	keys, _, _ := drainKeys(t, cur)
	if len(keys) != 100 {
		t.Fatalf("n=1 scanned %d rows", len(keys))
	}
	if cur.SegmentStats() != nil {
		t.Fatal("serial cursor must not report segment stats")
	}
}

// TestParallelQueryRacingWriters runs parallel scans (both merge modes)
// while writers split the scanned leaves with inserts and delete rows
// outside the asserted set. Every stable row must be served exactly
// once; ordered mode must stay sorted throughout. Run with -race.
func TestParallelQueryRacingWriters(t *testing.T) {
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 4096})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	tb, err := e.CreateTable("t", intSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const stable = 3000
	// Stable rows at ids ≡ 0 (mod 4): present before any scan starts and
	// never touched by writers, so each must be served exactly once.
	stableIDs := make(map[int64]bool, stable)
	for i := 0; i < stable; i++ {
		id := int64(4 * i)
		if _, err := tb.Insert(intRow(int(id))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		stableIDs[id] = true
	}
	// Victim rows interleaved at ids ≡ 2 (mod 4): deleted mid-scan.
	type victim struct {
		id  int64
		rid storage.RID
	}
	var vs []victim
	for i := 0; i < stable; i += 2 {
		id := int64(4*i + 2)
		rid, err := tb.Insert(intRow(int(id)))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		vs = append(vs, victim{id: id, rid: rid})
	}
	ix, err := tb.CreateIndex("by_id", []string{"id"}, WithCache("a", "b"), WithFillFactor(0.5))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	// Writer 1: inserts fresh odd ids inside the scanned range → splits
	// the leaves the scan is walking.
	writers.Add(1)
	go func() {
		defer writers.Done()
		id := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tb.Insert(intRow(int(id))); err != nil {
				t.Errorf("racing insert: %v", err)
				return
			}
			id += 2
		}
	}()
	// Writer 2: deletes victims low-to-high, shrinking scanned leaves
	// ahead of (and under) the cursors.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for _, v := range vs {
			select {
			case <-stop:
				return
			default:
			}
			if err := tb.Delete(v.rid); err != nil {
				t.Errorf("racing delete id=%d: %v", v.id, err)
				return
			}
		}
	}()
	var scans sync.WaitGroup
	for _, mode := range []MergeMode{MergeOrdered, MergeUnordered} {
		for _, n := range []int{2, 4} {
			scans.Add(1)
			go func(mode MergeMode, n int) {
				defer scans.Done()
				cur, err := ix.Query(WithParallel(n), WithMergeMode(mode))
				if err != nil {
					t.Errorf("mode=%v n=%d: Query: %v", mode, n, err)
					return
				}
				defer cur.Close()
				seen := make(map[int64]int)
				var prev []byte
				for cur.Next() {
					id := cur.Row()[0].Int
					seen[id]++
					if mode == MergeOrdered {
						if prev != nil && bytes.Compare(prev, cur.Key()) >= 0 {
							t.Errorf("mode=%v n=%d: keys out of order at id=%d", mode, n, id)
							return
						}
						prev = append(prev[:0], cur.Key()...)
					}
				}
				if err := cur.Err(); err != nil {
					t.Errorf("mode=%v n=%d: Err: %v", mode, n, err)
					return
				}
				for id := range stableIDs {
					if seen[id] != 1 {
						t.Errorf("mode=%v n=%d: stable id=%d served %d times", mode, n, id, seen[id])
						return
					}
				}
				for id, c := range seen {
					if c != 1 {
						t.Errorf("mode=%v n=%d: id=%d served %d times", mode, n, id, c)
						return
					}
				}
			}(mode, n)
		}
	}
	scans.Wait()
	close(stop)
	writers.Wait()
	if err := ix.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("CheckIntegrity after race: %v", err)
	}
}
