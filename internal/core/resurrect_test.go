package core

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

// Cache entries are volatile, but when a leaf page gets dirtied for a
// legitimate reason (a key insert) while holding cache entries, those
// entries ride along to disk and come back on the next fetch. The CSN /
// predicate-log protocol must decide correctly in both directions:
// resurrected-but-valid entries MAY be served; resurrected-but-stale
// entries MUST NOT be.

// resurrectSetup builds a small engine whose pool is tiny, so pages
// evict constantly, with a cached index on the page table.
func resurrectSetup(t *testing.T) (*Engine, *Table, *Index) {
	t.Helper()
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 8})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < 60; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev"), WithCacheSeed(5))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return e, tb, ix
}

func resurrectKey(i int) []tuple.Value {
	return []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
}

func TestResurrectedCacheServedWhenStillValid(t *testing.T) {
	e, tb, ix := resurrectSetup(t)
	// Fill the cache entry for row 10 and dirty its leaf legitimately by
	// inserting more rows (index inserts dirty leaf pages).
	if _, _, err := ix.Lookup([]string{"latest_rev"}, resurrectKey(10)...); err != nil {
		t.Fatalf("fill lookup: %v", err)
	}
	for i := 60; i < 80; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Flush and evict everything: the leaf (with any surviving cache
	// bytes) round-trips through disk.
	if err := e.Pool().FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := e.Pool().EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	// No updates happened: whatever cache survives is valid. Whether
	// this lookup hits depends on whether index growth overwrote the
	// entry — both outcomes are legal — but the value must be right.
	row, res, err := ix.Lookup([]string{"latest_rev"}, resurrectKey(10)...)
	if err != nil || !res.Found {
		t.Fatalf("lookup after eviction: %+v %v", res, err)
	}
	if row[0].Int != 100 {
		t.Fatalf("wrong value after resurrection: %d (cacheHit=%v)", row[0].Int, res.CacheHit)
	}
}

func TestResurrectedCacheInvalidatedByInterveningUpdate(t *testing.T) {
	e, tb, ix := resurrectSetup(t)
	key := resurrectKey(10)
	if _, _, err := ix.Lookup([]string{"latest_rev"}, key...); err != nil {
		t.Fatalf("fill lookup: %v", err)
	}
	// Dirty the leaf legitimately, flush, evict: stale-capable bytes on disk.
	for i := 60; i < 70; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := e.Pool().FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := e.Pool().EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	// Update the cached field while the page is cold on disk.
	rid, found, err := ix.LookupRID(key...)
	if err != nil || !found {
		t.Fatalf("LookupRID: %v %v", found, err)
	}
	newRow := pageRow(10)
	newRow[4] = tuple.Int64(4242)
	if _, err := tb.Update(rid, newRow); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// Evict again so the update's own page traffic can't mask anything.
	if err := e.Pool().EvictAll(); err != nil {
		t.Fatalf("EvictAll: %v", err)
	}
	// The resurrected cache entry for row 10 is stale; the predicate log
	// (or CSN escalation) must prevent it from being served.
	row, res, err := ix.Lookup([]string{"latest_rev"}, key...)
	if err != nil || !res.Found {
		t.Fatalf("lookup after update: %+v %v", res, err)
	}
	if row[0].Int != 4242 {
		t.Fatalf("stale resurrected cache served: got %d, want 4242 (cacheHit=%v)", row[0].Int, res.CacheHit)
	}
}

func TestEvictionChurnKeepsLookupsCorrect(t *testing.T) {
	_, tb, ix := resurrectSetup(t)
	// Interleave lookups, updates, and inserts on a pool far smaller
	// than the working set; every lookup must return the current value.
	current := map[int]int64{}
	for i := 0; i < 60; i++ {
		current[i] = int64(i * 10)
	}
	for round := 0; round < 30; round++ {
		u := (round * 7) % 60
		key := resurrectKey(u)
		rid, found, err := ix.LookupRID(key...)
		if err != nil || !found {
			t.Fatalf("LookupRID(%d): %v %v", u, found, err)
		}
		newRow := pageRow(u)
		newRow[4] = tuple.Int64(current[u] + 1)
		if _, err := tb.Update(rid, newRow); err != nil {
			t.Fatalf("Update: %v", err)
		}
		current[u]++
		for q := 0; q < 10; q++ {
			i := (round*13 + q*3) % 60
			row, res, err := ix.Lookup([]string{"latest_rev"}, resurrectKey(i)...)
			if err != nil || !res.Found {
				t.Fatalf("Lookup(%d): %+v %v", i, res, err)
			}
			if row[0].Int != current[i] {
				t.Fatalf("round %d: row %d served %d, want %d (cacheHit=%v)",
					round, i, row[0].Int, current[i], res.CacheHit)
			}
		}
	}
}
