package core

import (
	"fmt"
	"testing"

	"repro/internal/tuple"
)

func lookupManyFixture(t *testing.T, rows int, cached bool) (*Table, *Index) {
	t.Helper()
	e := newTestEngine(t)
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	opts := []IndexOption{}
	if cached {
		opts = append(opts, WithCache("latest_rev", "len"), WithCacheSeed(1))
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"}, opts...)
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return tb, ix
}

func pageKey(i int) []tuple.Value {
	return []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
}

// TestLookupManyMatchesSingleLookups answers a scrambled batch (present
// and absent keys) and checks every row and result against the
// one-at-a-time path.
func TestLookupManyMatchesSingleLookups(t *testing.T) {
	const rows = 500
	_, ix := lookupManyFixture(t, rows, true)
	proj := []string{"latest_rev", "title"}
	keys := make([][]tuple.Value, 0, 64)
	for _, i := range []int{499, 0, 17, 18, 19, 250, 9999, 3, 251, 499, 777, 42} {
		keys = append(keys, pageKey(i))
	}
	gotRows, gotRes, err := ix.LookupMany(proj, keys)
	if err != nil {
		t.Fatalf("LookupMany: %v", err)
	}
	if len(gotRows) != len(keys) || len(gotRes) != len(keys) {
		t.Fatalf("got %d rows / %d results for %d keys", len(gotRows), len(gotRes), len(keys))
	}
	for k, key := range keys {
		wantRow, wantRes, err := ix.Lookup(proj, key...)
		if err != nil {
			t.Fatalf("Lookup key %d: %v", k, err)
		}
		if gotRes[k].Found != wantRes.Found || gotRes[k].RID != wantRes.RID {
			t.Errorf("key %d: result %+v, want found=%v rid=%v", k, gotRes[k], wantRes.Found, wantRes.RID)
		}
		if !wantRes.Found {
			if gotRows[k] != nil {
				t.Errorf("key %d: absent key returned row %v", k, gotRows[k])
			}
			continue
		}
		if len(gotRows[k]) != len(wantRow) {
			t.Fatalf("key %d: row width %d, want %d", k, len(gotRows[k]), len(wantRow))
		}
		for c := range wantRow {
			if !gotRows[k][c].Equal(wantRow[c]) {
				t.Errorf("key %d col %d: %v, want %v", k, c, gotRows[k][c], wantRow[c])
			}
		}
	}
}

// TestLookupManyGroupsLeafVisits verifies the batch path answers from
// the cache (leaf-only) once warmed, i.e. grouping does not bypass the
// Section 2.1.1 flow.
func TestLookupManyCacheHits(t *testing.T) {
	const rows = 400
	_, ix := lookupManyFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	proj := []string{"namespace", "title", "latest_rev", "len"}
	keys := make([][]tuple.Value, rows)
	for i := range keys {
		keys[i] = pageKey(i)
	}
	_, res, err := ix.LookupMany(proj, keys)
	if err != nil {
		t.Fatalf("LookupMany: %v", err)
	}
	hits := 0
	for i, r := range res {
		if !r.Found {
			t.Fatalf("key %d not found", i)
		}
		if r.CacheHit {
			hits++
		}
	}
	if hits == 0 {
		t.Error("warmed cache served zero hits through LookupMany")
	}
}

// TestLookupIntoReusesBuffer checks the caller-buffer variant returns
// correct values and actually reuses the provided backing array.
func TestLookupIntoReusesBuffer(t *testing.T) {
	const rows = 100
	_, ix := lookupManyFixture(t, rows, true)
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}
	proj := []string{"latest_rev", "len"}
	buf := make(tuple.Row, 0, len(proj))
	for i := 0; i < rows; i++ {
		row, res, err := ix.LookupInto(buf, proj, pageKey(i)...)
		if err != nil {
			t.Fatalf("LookupInto: %v", err)
		}
		if !res.Found {
			t.Fatalf("row %d not found", i)
		}
		if got, want := row[0].Int, int64(i*10); got != want {
			t.Errorf("row %d latest_rev = %d, want %d", i, got, want)
		}
		if got, want := row[1].Int, int64(100+i); got != want {
			t.Errorf("row %d len = %d, want %d", i, got, want)
		}
		if cap(row) == len(proj) && len(buf) == 0 {
			// Reuse contract: same backing array handed back.
			if &row[:1][0] != &buf[:1][0] {
				t.Fatal("LookupInto did not reuse the caller buffer")
			}
		}
		buf = row
	}
}

// TestProjectionPlanCacheConcurrent exercises the copy-on-write
// projection-plan cache from many goroutines using distinct and
// repeated projections (run with -race).
func TestProjectionPlanCacheConcurrent(t *testing.T) {
	_, ix := lookupManyFixture(t, 50, false)
	projs := [][]string{
		nil,
		{"latest_rev"},
		{"len", "latest_rev"},
		{"title"},
		{"namespace", "title", "latest_rev", "len"},
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for n := 0; n < 200; n++ {
				p := projs[(g+n)%len(projs)]
				row, res, err := ix.Lookup(p, pageKey(n%50)...)
				if err != nil {
					done <- err
					return
				}
				if !res.Found {
					done <- fmt.Errorf("row %d vanished", n%50)
					return
				}
				want := len(p)
				if p == nil {
					want = ix.table.schema.NumFields()
				}
				if len(row) != want {
					done <- fmt.Errorf("projection %v returned %d fields", p, len(row))
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ix.Lookup([]string{"no_such_field"}, pageKey(0)...); err == nil {
		t.Error("unknown projection field should error")
	}
}
