package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/btree"
	"repro/internal/storage"
)

// WAL record types. The log itself treats these as opaque (see
// internal/wal); their payloads are defined here.
//
// Batch records use a compact uvarint encoding — they are the hot path,
// one per Apply. DDL records are JSON: they are rare, and sharing the
// manifest's field structs keeps the two catalogs' schemas from
// drifting apart.
const (
	recBatch           uint8 = 1
	recCreateTable     uint8 = 2
	recCreateIndex     uint8 = 3
	recDropTable       uint8 = 4
	recCheckpointBegin uint8 = 5
	recCheckpointEnd   uint8 = 6
	// recTxn is one committed transaction: commit timestamp, then each
	// touched table's actions in the recBatch sub-format. Replay applies
	// the transaction whole (the record only exists if commit reached the
	// log) and flattened — post-GC state, no version metadata.
	recTxn uint8 = 7
)

// Action kinds within a batch record.
const (
	actPut uint8 = 1 // heap record (re)installed at a RID
	actDel uint8 = 2 // heap record removed
	actIdx uint8 = 3 // one index run (sorted entries) applied to a tree
)

// walAction is one decoded redo step of a batch: a physical heap
// effect or an index run. Actions replay in log order, which is effect
// order — the batch pipeline appends each action only after its effect
// landed.
type walAction struct {
	kind uint8
	// actPut: rid is the pre-image's address, newRID the post-image's
	// (equal unless the update relocated the record). actDel: rid only.
	rid, newRID storage.RID
	rec         []byte
	// actIdx: the target index and the sorted run applied to its tree.
	index   string
	entries []btree.RunEntry
}

// walBatch accumulates one Apply's redo actions, encoding each into
// its payload buffer as it is reported — the arguments are only valid
// at call time (index runs reuse their entry buffers), and deferring
// the encode would mean copying them twice. Instances are pooled on
// the engine (Apply is the hot path); see Engine.getWALBatch. A nil
// *walBatch (WAL disabled) makes every append a no-op, so the batch
// pipeline threads it unconditionally.
type walBatch struct {
	n   int    // actions encoded
	buf []byte // payload: table header + encoded actions
}

// reset primes the encoder for one Apply against the named table.
func (w *walBatch) reset(table string) {
	w.n = 0
	w.buf = binary.AppendUvarint(w.buf[:0], uint64(len(table)))
	w.buf = append(w.buf, table...)
}

func (w *walBatch) put(rid, newRID storage.RID, rec []byte) {
	if w == nil {
		return
	}
	w.n++
	w.buf = append(w.buf, actPut)
	w.buf = binary.AppendUvarint(w.buf, rid.Pack())
	w.buf = binary.AppendUvarint(w.buf, newRID.Pack())
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rec)))
	w.buf = append(w.buf, rec...)
}

func (w *walBatch) del(rid storage.RID) {
	if w == nil {
		return
	}
	w.n++
	w.buf = append(w.buf, actDel)
	w.buf = binary.AppendUvarint(w.buf, rid.Pack())
}

// idx records a run applied to the named index.
func (w *walBatch) idx(name string, entries ...btree.RunEntry) {
	if w == nil || len(entries) == 0 {
		return
	}
	w.n++
	w.buf = append(w.buf, actIdx)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(name)))
	w.buf = append(w.buf, name...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(entries)))
	for _, e := range entries {
		op := byte(0)
		if e.Op == btree.RunDelete {
			op = 1
		}
		w.buf = append(w.buf, op)
		w.buf = binary.AppendUvarint(w.buf, uint64(len(e.Key)))
		w.buf = append(w.buf, e.Key...)
		w.buf = binary.AppendUvarint(w.buf, e.Value)
	}
}

func (w *walBatch) empty() bool { return w == nil || w.n == 0 }

// payload returns the encoded batch record. Valid until the next reset.
func (w *walBatch) payload() []byte { return w.buf }

// batchDecoder walks an encoded batch payload.
type batchDecoder struct {
	buf []byte
	err error
}

func (d *batchDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("core: wal batch record: bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *batchDecoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < n {
		d.err = fmt.Errorf("core: wal batch record: truncated")
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *batchDecoder) byte() byte {
	b := d.bytes(1)
	if d.err != nil {
		return 0
	}
	return b[0]
}

// decodeBatch parses a batch record payload: the table header followed
// by actions until the payload is exhausted. Slices alias the payload.
func decodeBatch(payload []byte) (table string, actions []walAction, err error) {
	d := &batchDecoder{buf: payload}
	table = string(d.bytes(d.uvarint()))
	for len(d.buf) > 0 && d.err == nil {
		a := walAction{kind: d.byte()}
		switch a.kind {
		case actPut:
			a.rid = storage.UnpackRID(d.uvarint())
			a.newRID = storage.UnpackRID(d.uvarint())
			a.rec = d.bytes(d.uvarint())
		case actDel:
			a.rid = storage.UnpackRID(d.uvarint())
		case actIdx:
			a.index = string(d.bytes(d.uvarint()))
			ne := d.uvarint()
			a.entries = make([]btree.RunEntry, 0, ne)
			for j := uint64(0); j < ne && d.err == nil; j++ {
				op := btree.RunUpsert
				if d.byte() == 1 {
					op = btree.RunDelete
				}
				key := d.bytes(d.uvarint())
				val := d.uvarint()
				a.entries = append(a.entries, btree.RunEntry{Key: key, Value: val, Op: op})
			}
		default:
			if d.err == nil {
				d.err = fmt.Errorf("core: wal batch record: unknown action %d", a.kind)
			}
		}
		actions = append(actions, a)
	}
	if d.err != nil {
		return "", nil, d.err
	}
	return table, actions, nil
}

// encodeTxn appends happen in txn.go (encodeTxnRecord); decodeTxn
// parses a recTxn payload into its commit timestamp and per-table
// recBatch-format sub-payloads (aliasing the input).
func decodeTxn(payload []byte) (ts uint64, subs [][]byte, err error) {
	d := &batchDecoder{buf: payload}
	ts = d.uvarint()
	n := d.uvarint()
	for i := uint64(0); i < n && d.err == nil; i++ {
		subs = append(subs, d.bytes(d.uvarint()))
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	return ts, subs, nil
}

// ddlCreateTable is the JSON payload of a recCreateTable record. The
// heap configuration is recorded resolved (actual shard count), so
// replay reconstructs the same file shape the original call produced.
type ddlCreateTable struct {
	Name             string          `json:"name"`
	Fields           []manifestField `json:"fields"`
	AppendOnly       bool            `json:"append_only,omitempty"`
	HeapFillFactor   float64         `json:"heap_fill_factor,omitempty"`
	HeapInsertShards int             `json:"heap_insert_shards,omitempty"`
}

// ddlCreateIndex is the JSON payload of a recCreateIndex record.
type ddlCreateIndex struct {
	Table        string   `json:"table"`
	Name         string   `json:"name"`
	KeyFields    []string `json:"key_fields"`
	NonUnique    bool     `json:"non_unique,omitempty"`
	CachedFields []string `json:"cached_fields,omitempty"`
	BucketN      int      `json:"bucket_n,omitempty"`
	PredLogLimit int      `json:"pred_log_limit,omitempty"`
	CacheSeed    int64    `json:"cache_seed,omitempty"`
	FillFactor   float64  `json:"fill_factor,omitempty"`
}

func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// The DDL structs are plain data; marshal cannot fail.
		panic(fmt.Sprintf("core: encoding wal ddl record: %v", err))
	}
	return b
}

func encodeCheckpointEnd(beginLSN uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], beginLSN)
	return b[:]
}
