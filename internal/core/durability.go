package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/btree"
	"repro/internal/heap"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// SyncPolicy selects when an acked write is on stable storage.
type SyncPolicy int

const (
	// SyncGroupCommit (the default) makes every Apply durable before it
	// returns, coalescing concurrent committers into one fsync: the
	// first becomes the group leader and syncs on behalf of everyone
	// whose record it covers. Latency of a lone writer matches
	// SyncAlways; throughput under concurrency approaches SyncNone.
	SyncGroupCommit SyncPolicy = iota
	// SyncAlways fsyncs the log on every Apply, no coalescing.
	SyncAlways
	// SyncNone appends to the log but never fsyncs on the commit path;
	// the log reaches disk at checkpoints (and at the OS's leisure). A
	// crash can lose the tail of acked writes, but never corrupts: the
	// per-batch prefix-atomicity of recovery still holds.
	SyncNone
)

// Checkpoint forces a fuzzy checkpoint: every committed effect is
// flushed to the main database file, the catalog manifest is rewritten,
// and the WAL is truncated to the new checkpoint record. Without a WAL
// it degrades to flushing dirty pages.
//
// The checkpoint is "fuzzy" in the classic sense — concurrent Applies
// keep running while the dirty-page set is discovered; only the final
// snapshot+flush holds the commit gate exclusively.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return e.pool.FlushAll()
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return e.checkpointLocked()
}

// checkpointLocked runs one checkpoint. Caller holds e.ckptMu.
//
// Sequence (the order is the correctness argument):
//
//  1. Append a checkpoint-begin record; its LSN B is the new replay
//     horizon. Records before B will have every effect captured below;
//     records at/after B survive truncation and replay idempotently.
//  2. Under the commit gate (exclusive — no Apply holds a record
//     half-appended): sync the WAL, snapshot the catalog, and stream
//     every dirty page image plus the new manifest into the
//     double-write file. Its final fsync is the checkpoint's atomic
//     commit point.
//  3. Flush the dirty pages in place and sync the database file. A
//     crash anywhere in here is repaired from the double-write file.
//  4. Install the manifest (atomic rename), log checkpoint-end, drop
//     the WAL prefix before B, and remove the double-write file.
//
// nblb:commit-entry — checkpoints hold the gate exclusively across I/O
// by design.
func (e *Engine) checkpointLocked() error {
	beginLSN, err := e.wal.Append(recCheckpointBegin, nil)
	if err != nil {
		return err
	}
	wal.TestPoint("ckpt:begin")
	e.commitGate.Lock()
	if err := e.wal.Sync(); err != nil {
		e.commitGate.Unlock()
		return err
	}
	m := e.snapshotManifest(beginLSN)
	dw, err := newDWWriter(e.dwPath, m)
	if err != nil {
		e.commitGate.Unlock()
		return err
	}
	if err := e.pool.DirtyPages(dw.addPage); err != nil {
		e.commitGate.Unlock()
		return dw.abort(err)
	}
	if err := dw.commit(); err != nil {
		e.commitGate.Unlock()
		return err
	}
	if err := e.pool.FlushAll(); err != nil {
		e.commitGate.Unlock()
		return err
	}
	if err := e.disk.Sync(); err != nil {
		e.commitGate.Unlock()
		return err
	}
	e.commitGate.Unlock()
	wal.TestPoint("ckpt:flushed")
	if err := writeManifestAtomic(e.manifestPath, m); err != nil {
		return err
	}
	wal.TestPoint("ckpt:manifest")
	if _, err := e.wal.Append(recCheckpointEnd, encodeCheckpointEnd(beginLSN)); err != nil {
		return err
	}
	if err := e.wal.Sync(); err != nil {
		return err
	}
	if err := e.wal.TruncateTo(beginLSN); err != nil {
		return err
	}
	wal.TestPoint("ckpt:truncated")
	os.Remove(e.dwPath)
	return nil
}

// snapshotManifest captures the catalog as of checkpoint-begin LSN B.
// Caller holds the commit gate exclusively, so table and index shapes
// are stable.
func (e *Engine) snapshotManifest(beginLSN uint64) *manifest {
	m := &manifest{
		Magic:         manifestMagic,
		Version:       manifestVersion,
		CheckpointLSN: beginLSN,
		NumPages:      e.disk.NumPages(),
		Clock:         e.clock.Load(),
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := e.tables[n]
		t.mu.RLock()
		mt := manifestTable{
			Name:             t.name,
			Fields:           manifestFields(t.schema),
			Rows:             t.rows.Load(),
			AppendOnly:       t.cfg.appendOnly,
			HeapFillFactor:   t.cfg.heapFillFactor,
			HeapInsertShards: t.file.InsertShards(),
		}
		for _, id := range t.file.Pages() {
			mt.HeapPages = append(mt.HeapPages, uint64(id))
		}
		t.vers.mu.RLock()
		for rid, vm := range t.vers.m {
			if vm.prev == tombstonePrev {
				continue // physically collected; only in-flight scanners need it
			}
			mt.Versions = append(mt.Versions, manifestVer{
				RID: rid.Pack(), Born: vm.born, Dead: vm.dead, Prev: vm.prev,
			})
		}
		t.vers.mu.RUnlock()
		sort.Slice(mt.Versions, func(i, j int) bool { return mt.Versions[i].RID < mt.Versions[j].RID })
		ixNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		for _, iname := range ixNames {
			ix := t.indexes[iname]
			mi := manifestIndex{
				Name:         ix.name,
				KeyFields:    ix.KeyFieldNames(),
				NonUnique:    !ix.unique,
				CachedFields: ix.cfg.cachedFields,
				BucketN:      ix.cfg.bucketN,
				PredLogLimit: ix.cfg.predLogLimit,
				CacheSeed:    ix.cfg.cacheSeed,
				FillFactor:   ix.cfg.fillFactor,
				Root:         uint64(ix.tree.Root()),
				Height:       ix.tree.Height(),
				NumKeys:      ix.tree.Len(),
			}
			if ix.cache != nil {
				mi.CacheCSN = ix.cache.CSN()
			}
			mt.Indexes = append(mt.Indexes, mi)
		}
		t.mu.RUnlock()
		m.Tables = append(m.Tables, mt)
	}
	return m
}

func manifestFields(s *tuple.Schema) []manifestField {
	fs := s.Fields()
	out := make([]manifestField, len(fs))
	for i, f := range fs {
		out[i] = manifestField{Name: f.Name, Kind: uint8(f.Kind), Size: f.Size}
	}
	return out
}

func fieldsFromManifest(mfs []manifestField) []tuple.Field {
	out := make([]tuple.Field, len(mfs))
	for i, f := range mfs {
		out[i] = tuple.Field{Name: f.Name, Kind: tuple.Kind(f.Kind), Size: f.Size}
	}
	return out
}

// maybeCheckpoint runs a checkpoint when the WAL has grown past the
// configured budget or dirty pages crowd the (no-steal) buffer pool.
// Non-blocking: if a checkpoint is already running, the caller moves
// on. Errors are swallowed here — the next Checkpoint (Close retries
// one) surfaces persistent failures.
func (e *Engine) maybeCheckpoint() {
	if e.wal == nil {
		return
	}
	if !e.checkpointDue() {
		return
	}
	if !e.ckptMu.TryLock() {
		return
	}
	defer e.ckptMu.Unlock()
	if !e.checkpointDue() {
		return
	}
	_ = e.checkpointLocked()
}

func (e *Engine) checkpointDue() bool {
	return e.wal.Size() >= e.ckptBytes ||
		e.pool.DirtyFrames() > int64(e.pool.Capacity())/2
}

// getWALBatch returns a pooled batch encoder primed for the named
// table. Pooling keeps Apply's logging allocation-free at steady
// state: the encoder's payload buffer is reused across batches.
func (e *Engine) getWALBatch(table string) *walBatch {
	w, _ := e.wbPool.Get().(*walBatch)
	if w == nil {
		w = &walBatch{}
	}
	w.reset(table)
	return w
}

// putWALBatch recycles an encoder once its payload has been appended
// to the log (the log copies the payload into its frame).
func (e *Engine) putWALBatch(w *walBatch) {
	e.wbPool.Put(w)
}

// walCommit makes the record at lsn durable per the engine's policy.
func (e *Engine) walCommit(lsn uint64) error {
	switch e.syncPolicy {
	case SyncAlways:
		return e.wal.Sync()
	case SyncNone:
		return nil
	default:
		return e.wal.Commit(lsn)
	}
}

// WALStats reports the log's append/fsync counters (zero without WAL).
// The write-scaling benchmark derives ops-per-fsync from it.
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}

// recover brings a WAL engine to a consistent state on open: repair a
// torn checkpoint from the double-write file if one committed, rebuild
// the catalog from the manifest, replay the WAL suffix, and cut a fresh
// checkpoint so the next open starts clean. Runs single-threaded before
// the engine is published; it takes no locks.
func (e *Engine) recover() error {
	// A complete double-write file means a checkpoint committed but may
	// not have finished flushing in place: re-apply its page images
	// (idempotent) and install its manifest. A torn one is discarded —
	// the no-steal policy guarantees the main file still holds exactly
	// the previous checkpoint's images.
	if m, pages, ok := readDW(e.dwPath, e.disk.PageSize()); ok {
		var maxID uint64
		for _, p := range pages {
			if uint64(p.id) >= maxID {
				maxID = uint64(p.id) + 1
			}
		}
		if err := e.extendDisk(maxID); err != nil {
			return err
		}
		for _, p := range pages {
			if err := e.disk.WritePage(p.id, p.data); err != nil {
				return err
			}
		}
		if err := e.disk.Sync(); err != nil {
			return err
		}
		if err := writeManifestAtomic(e.manifestPath, m); err != nil {
			return err
		}
	}
	os.Remove(e.dwPath)

	l, err := wal.Open(e.walPath)
	if err != nil {
		return err
	}
	e.wal = l

	m, err := loadManifest(e.manifestPath)
	if err != nil {
		return err
	}
	var startLSN uint64
	if m != nil {
		startLSN = m.CheckpointLSN
		e.clock.Store(m.Clock)
		// The crash may have happened before lately-allocated pages were
		// flushed; a FileDisk then reports fewer pages than the
		// checkpoint knew. Re-extend so manifest page ids resolve.
		if err := e.extendDisk(m.NumPages); err != nil {
			return err
		}
		for i := range m.Tables {
			if err := e.rebuildTable(&m.Tables[i]); err != nil {
				return err
			}
		}
	}

	// Pass 1: pre-extend the disk past every heap page the log suffix
	// references. Replay-time allocations (index splits, index builds)
	// then land beyond the logged RIDs instead of colliding with them.
	var maxHeapPage uint64
	notePage := func(id storage.PageID) {
		if uint64(id) >= maxHeapPage {
			maxHeapPage = uint64(id) + 1
		}
	}
	noteBatchPages := func(payload []byte) error {
		_, actions, derr := decodeBatch(payload)
		if derr != nil {
			return derr
		}
		for _, a := range actions {
			switch a.kind {
			case actPut:
				notePage(a.rid.Page)
				notePage(a.newRID.Page)
			case actDel:
				notePage(a.rid.Page)
			}
		}
		return nil
	}
	err = e.wal.Replay(startLSN, func(_ uint64, typ uint8, payload []byte) error {
		switch typ {
		case recBatch:
			return noteBatchPages(payload)
		case recTxn:
			_, subs, derr := decodeTxn(payload)
			if derr != nil {
				return derr
			}
			for _, sub := range subs {
				if err := noteBatchPages(sub); err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := e.extendDisk(maxHeapPage); err != nil {
		return err
	}

	// Pass 2: redo.
	replayed := 0
	err = e.wal.Replay(startLSN, func(_ uint64, typ uint8, payload []byte) error {
		if typ != recCheckpointBegin && typ != recCheckpointEnd {
			replayed++
		}
		return e.redoRecord(typ, payload)
	})
	if err != nil {
		return err
	}

	// No snapshot survives a crash, so no version history needs to
	// either: a full GC pass at watermark = clock (nothing registered,
	// so the watermark IS the clock) flattens every dead version a
	// checkpoint carried across — the physical rows replay could not
	// know about. Replayed recTxn records are already flat; GC's
	// ErrDeleted path prunes their leftover manifest metas.
	anyVersions := false
	for _, t := range e.tables {
		if t.vers.any.Load() {
			anyVersions = true
			break
		}
	}
	if anyVersions {
		wal.TestPoint("gc:recovery")
		e.RunGC()
		// Nothing is scanning during recovery, so the tombstones the GC
		// pass just left can be dropped immediately.
		for _, t := range e.tables {
			t.vers.sweepTombstones()
		}
	}

	if replayed > 0 {
		// Replay is physical and idempotent, so row deltas were not
		// tracked; recount from the heaps. Post-GC, live heap records
		// and logical rows coincide (every dead version was at or below
		// the watermark and is now gone).
		for _, t := range e.tables {
			st, serr := t.file.Stats()
			if serr != nil {
				return serr
			}
			t.rows.Store(int64(st.LiveRecords))
		}
	}
	if replayed > 0 || m == nil || anyVersions {
		// Terminal checkpoint: the replayed (and GC-flattened) state
		// becomes the new base image, and the WAL shrinks back to a
		// begin record.
		if err := e.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// extendDisk allocates zeroed pages until the disk holds at least n.
func (e *Engine) extendDisk(n uint64) error {
	for e.disk.NumPages() < n {
		if _, err := e.disk.Allocate(); err != nil {
			return err
		}
	}
	return nil
}

// redoRecord applies one WAL record during recovery. Every redo is
// idempotent and tolerant of already-done work: the replay horizon
// deliberately overlaps the checkpoint image.
func (e *Engine) redoRecord(typ uint8, payload []byte) error {
	switch typ {
	case recCheckpointBegin, recCheckpointEnd:
		return nil
	case recCreateTable:
		var d ddlCreateTable
		if err := json.Unmarshal(payload, &d); err != nil {
			return fmt.Errorf("core: redo create table: %w", err)
		}
		if _, ok := e.tables[d.Name]; ok {
			return nil // effects already in the checkpoint image
		}
		return e.replayCreateTable(&d)
	case recCreateIndex:
		var d ddlCreateIndex
		if err := json.Unmarshal(payload, &d); err != nil {
			return fmt.Errorf("core: redo create index: %w", err)
		}
		t, ok := e.tables[d.Table]
		if !ok {
			return nil // table dropped later in the log
		}
		if _, ok := t.indexes[d.Name]; ok {
			return nil
		}
		return t.replayCreateIndex(&d)
	case recDropTable:
		delete(e.tables, string(payload))
		return nil
	case recBatch:
		return e.redoBatch(payload)
	case recTxn:
		// A committed transaction, replayed whole and flattened: the
		// record encodes its post-GC state (updates as remove-old/put-new,
		// obsolete entries as deletions), so no version metadata survives
		// recovery — correctly, since no snapshot does either. The clock
		// advances past the commit timestamp so future commits never
		// reuse it. Uncommitted transactions never reached the log at
		// all: staging is purely in-memory.
		ts, subs, err := decodeTxn(payload)
		if err != nil {
			return err
		}
		if ts > e.clock.Load() {
			e.clock.Store(ts)
		}
		for _, sub := range subs {
			if err := e.redoBatch(sub); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: unknown wal record type %d", typ)
	}
}

// redoBatch replays one recBatch-format payload (a raw Apply's record,
// or one table's slice of a recTxn record).
func (e *Engine) redoBatch(payload []byte) error {
	table, actions, err := decodeBatch(payload)
	if err != nil {
		return err
	}
	t, ok := e.tables[table]
	if !ok {
		return nil // table dropped later in the log
	}
	for i := range actions {
		a := &actions[i]
		switch a.kind {
		case actPut:
			if a.rid != a.newRID {
				// Relocated update: the pre-image's slot died.
				if err := t.file.RedoDelete(a.rid); err != nil {
					return err
				}
			}
			if err := t.file.RedoPut(a.newRID, a.rec); err != nil {
				return err
			}
		case actDel:
			if err := t.file.RedoDelete(a.rid); err != nil {
				return err
			}
		case actIdx:
			ix, ok := t.indexes[a.index]
			if !ok {
				continue // index dropped with a later table rebuild
			}
			if _, err := ix.tree.ApplyRun(a.entries); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayCreateTable redoes a create-table record: same construction as
// CreateTable, minus validation already done originally and minus
// logging. The shard count in the record is resolved, so the rebuilt
// heap has the original's shape regardless of this process's GOMAXPROCS.
func (e *Engine) replayCreateTable(d *ddlCreateTable) error {
	schema, err := tuple.NewSchema(fieldsFromManifest(d.Fields)...)
	if err != nil {
		return fmt.Errorf("core: redo create table %q: %w", d.Name, err)
	}
	cfg := tableConfig{
		appendOnly:       d.AppendOnly,
		heapFillFactor:   d.HeapFillFactor,
		heapInsertShards: d.HeapInsertShards,
	}
	t, err := buildTable(e, d.Name, schema, cfg)
	if err != nil {
		return err
	}
	e.tables[d.Name] = t
	return nil
}

// replayCreateIndex redoes a create-index record against the replayed
// table state — the same rows the original build saw, so the resulting
// tree is logically identical (later index runs in the log apply by
// key, not by page, so physical layout differences are harmless).
func (t *Table) replayCreateIndex(d *ddlCreateIndex) error {
	cfg := indexConfig{
		cachedFields: d.CachedFields,
		bucketN:      d.BucketN,
		predLogLimit: d.PredLogLimit,
		cacheSeed:    d.CacheSeed,
		fillFactor:   d.FillFactor,
		nonUnique:    d.NonUnique,
	}
	ix, err := t.newIndexShell(d.Name, d.KeyFields, cfg)
	if err != nil {
		return fmt.Errorf("core: redo create index %q: %w", d.Name, err)
	}
	if err := ix.build(cfg.fillFactor); err != nil {
		return err
	}
	t.indexes[d.Name] = ix
	return nil
}

// rebuildTable reopens a table from its manifest entry: the heap over
// its recorded pages, each index over its recorded root. Index caches
// restart cold with their CSN seeded past the checkpoint's, so any
// cache payload persisted in a leaf before the crash can never be
// served against a fresh predicate log.
func (e *Engine) rebuildTable(mt *manifestTable) error {
	schema, err := tuple.NewSchema(fieldsFromManifest(mt.Fields)...)
	if err != nil {
		return fmt.Errorf("core: manifest table %q: %w", mt.Name, err)
	}
	cfg := tableConfig{
		appendOnly:       mt.AppendOnly,
		heapFillFactor:   mt.HeapFillFactor,
		heapInsertShards: mt.HeapInsertShards,
	}
	var hopts []heap.Option
	if cfg.appendOnly {
		hopts = append(hopts, heap.AppendOnly())
	}
	if cfg.heapFillFactor != 0 {
		hopts = append(hopts, heap.WithFillFactor(cfg.heapFillFactor))
	}
	if cfg.heapInsertShards > 0 {
		hopts = append(hopts, heap.WithInsertShards(cfg.heapInsertShards))
	}
	pages := make([]storage.PageID, len(mt.HeapPages))
	for i, id := range mt.HeapPages {
		pages[i] = storage.PageID(id)
	}
	f, err := heap.Open(e.pool, pages, hopts...)
	if err != nil {
		return fmt.Errorf("core: reopening heap for %q: %w", mt.Name, err)
	}
	t := &Table{
		engine:  e,
		name:    mt.Name,
		schema:  schema,
		file:    f,
		cfg:     cfg,
		indexes: make(map[string]*Index),
	}
	t.rows.Store(mt.Rows)
	for _, v := range mt.Versions {
		t.vers.set(storage.UnpackRID(v.RID), versionMeta{born: v.Born, dead: v.Dead, prev: v.Prev})
		if v.Dead != 0 {
			e.deadVersions.Add(1)
		}
	}
	for i := range mt.Indexes {
		mi := &mt.Indexes[i]
		icfg := indexConfig{
			cachedFields: mi.CachedFields,
			bucketN:      mi.BucketN,
			predLogLimit: mi.PredLogLimit,
			cacheSeed:    mi.CacheSeed,
			fillFactor:   mi.FillFactor,
			nonUnique:    mi.NonUnique,
		}
		ix, err := t.newIndexShell(mi.Name, mi.KeyFields, icfg)
		if err != nil {
			return fmt.Errorf("core: manifest index %q on %q: %w", mi.Name, mt.Name, err)
		}
		ix.tree = btree.Open(e.pool, storage.PageID(mi.Root), mi.Height, mi.NumKeys)
		if ix.cache != nil {
			ix.cache.SeedCSN(mi.CacheCSN + 1)
		}
		t.indexes[mi.Name] = ix
	}
	e.tables[mt.Name] = t
	return nil
}
