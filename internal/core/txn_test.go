package core

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tuple"
)

func kvSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "k", Kind: tuple.KindInt64},
		tuple.Field{Name: "v", Kind: tuple.KindInt64},
	)
}

func kvRow(k, v int64) tuple.Row {
	return tuple.Row{tuple.Int64(k), tuple.Int64(v)}
}

func kvTable(t *testing.T, e *Engine) *Table {
	t.Helper()
	tb, err := e.CreateTable("kv", kvSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tb.CreateIndex("by_k", []string{"k"}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return tb
}

// readAll returns a drain function usable directly around a Query call:
// readAll(t)(tb.Query(...)) yields the k→v map.
func readAll(t *testing.T) func(*Cursor, error) map[int64]int64 {
	return func(cur *Cursor, err error) map[int64]int64 {
		t.Helper()
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		defer cur.Close()
		out := make(map[int64]int64)
		for cur.Next() {
			r := cur.Row()
			out[r[0].Int] = r[1].Int
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("cursor: %v", err)
		}
		return out
	}
}

func TestTxnCommitAtomicAndSnapshot(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)

	// Pre-transactional row, committed via the raw path.
	if _, err := tb.Insert(kvRow(1, 10)); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	before := e.Begin() // snapshot taken before the txn commits
	defer before.Abort()

	tx := e.Begin()
	var b Batch
	b.Insert(kvRow(2, 20))
	b.Insert(kvRow(3, 30))
	if _, err := tx.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Nothing applied yet: latest reads see only row 1.
	if got := readAll(t)(tb.Query()); len(got) != 1 {
		t.Fatalf("pre-commit rows = %v, want only k=1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// Latest sees all three, the old snapshot still sees only row 1.
	got := readAll(t)(tb.Query())
	if len(got) != 3 || got[2] != 20 || got[3] != 30 {
		t.Fatalf("post-commit rows = %v", got)
	}
	old := readAll(t)(before.Query(tb))
	if len(old) != 1 || old[1] != 10 {
		t.Fatalf("snapshot rows = %v, want only k=1", old)
	}
	if tb.Rows() != 3 {
		t.Fatalf("Rows() = %d, want 3", tb.Rows())
	}
}

func TestTxnSnapshotSeesOldVersionThroughIndex(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)

	tx0 := e.Begin()
	var b Batch
	b.Insert(kvRow(7, 70))
	if _, err := tx0.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx0.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	snap := e.Begin()
	defer snap.Abort()

	// Update k=7 twice after the snapshot pinned.
	for i, v := range []int64{71, 72} {
		rid, _, err := tb.indexes["by_k"].LookupRID(tuple.Int64(7))
		if err != nil {
			t.Fatalf("LookupRID: %v", err)
		}
		tx := e.Begin()
		var ub Batch
		ub.Update(rid, kvRow(7, v))
		if _, err := tx.Apply(tb, &ub); err != nil {
			t.Fatalf("update %d Apply: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("update %d Commit: %v", i, err)
		}
	}

	// Latest: 72, via heap order, index order, and unique lookup.
	if got := readAll(t)(tb.Query()); got[7] != 72 {
		t.Fatalf("latest heap read = %v, want 72", got)
	}
	if got := readAll(t)(tb.Query(WithIndex("by_k"))); got[7] != 72 {
		t.Fatalf("latest index read = %v, want 72", got)
	}
	// Snapshot: the original 70, through both shapes.
	if got := readAll(t)(snap.Query(tb)); got[7] != 70 || len(got) != 1 {
		t.Fatalf("snapshot heap read = %v, want {7:70}", got)
	}
	if got := readAll(t)(snap.Query(tb, WithIndex("by_k"))); got[7] != 70 || len(got) != 1 {
		t.Fatalf("snapshot index read = %v, want {7:70}", got)
	}
}

func TestTxnFirstCommitterWins(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	rid, err := tb.Insert(kvRow(1, 10))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}

	t1, t2 := e.Begin(), e.Begin()
	var b1, b2 Batch
	b1.Update(rid, kvRow(1, 11))
	b2.Update(rid, kvRow(1, 12))
	if _, err := t1.Apply(tb, &b1); err != nil {
		t.Fatalf("t1 Apply: %v", err)
	}
	if _, err := t2.Apply(tb, &b2); err != nil {
		t.Fatalf("t2 Apply: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("t2 Commit = %v, want ErrTxnConflict", err)
	}
	if got := readAll(t)(tb.Query()); got[1] != 11 {
		t.Fatalf("rows = %v, want first committer's 11", got)
	}
}

func TestTxnDeleteAndKeyReuse(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	ix := tb.indexes["by_k"]

	tx := e.Begin()
	var b Batch
	b.Insert(kvRow(5, 50))
	if _, err := tx.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	snap := e.Begin() // pins k=5 → 50
	defer snap.Abort()

	// Delete k=5, then re-insert it with a new value in a later txn —
	// the unique entry is reused and must chain to the dead holder.
	rid, _, err := ix.LookupRID(tuple.Int64(5))
	if err != nil {
		t.Fatalf("LookupRID: %v", err)
	}
	del := e.Begin()
	var db Batch
	db.Delete(rid)
	if _, err := del.Apply(tb, &db); err != nil {
		t.Fatalf("delete Apply: %v", err)
	}
	if err := del.Commit(); err != nil {
		t.Fatalf("delete Commit: %v", err)
	}
	if _, found, err := ix.LookupRID(tuple.Int64(5)); err != nil || found {
		t.Fatalf("LookupRID after delete = found=%v err=%v, want not found", found, err)
	}

	re := e.Begin()
	var rb Batch
	rb.Insert(kvRow(5, 55))
	if _, err := re.Apply(tb, &rb); err != nil {
		t.Fatalf("reinsert Apply: %v", err)
	}
	if err := re.Commit(); err != nil {
		t.Fatalf("reinsert Commit: %v", err)
	}

	if got := readAll(t)(tb.Query(WithIndex("by_k"))); got[5] != 55 {
		t.Fatalf("latest = %v, want {5:55}", got)
	}
	// The pinned snapshot still sees the original 50 through the reused
	// unique entry (per-key version chain across key reuse).
	if got := readAll(t)(snap.Query(tb, WithIndex("by_k"))); got[5] != 50 || len(got) != 1 {
		t.Fatalf("snapshot = %v, want {5:50}", got)
	}
}

func TestTxnGCUnlinksDeadVersions(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	ix := tb.indexes["by_k"]

	const n = 50
	tx := e.Begin()
	var b Batch
	for i := 0; i < n; i++ {
		b.Insert(kvRow(int64(i), int64(i)))
	}
	if _, err := tx.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// Update the even rows, delete the odd ones: one dead version each.
	for i := 0; i < n; i++ {
		rid, _, err := ix.LookupRID(tuple.Int64(int64(i)))
		if err != nil {
			t.Fatalf("LookupRID: %v", err)
		}
		u := e.Begin()
		var ub Batch
		if i%2 == 1 {
			ub.Delete(rid)
		} else {
			ub.Update(rid, kvRow(int64(i), int64(i+1000)))
		}
		if _, err := u.Apply(tb, &ub); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
		if err := u.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}

	removed := e.RunGC()
	if removed != n {
		t.Fatalf("RunGC removed %d versions, want %d (one dead version per row)", removed, n)
	}
	// Version map fully flattened: metas of live rows at/below the
	// watermark are pruned too.
	// Collected versions leave tombstones (cleared on RID reuse); only
	// non-tombstone metas must be gone.
	tb.vers.mu.RLock()
	left := 0
	for _, m := range tb.vers.m {
		if m.prev != tombstonePrev {
			left++
		}
	}
	tb.vers.mu.RUnlock()
	if left != 0 {
		t.Fatalf("%d live version metas left after GC, want 0", left)
	}
	// Index entries of deleted keys are gone; tree matches live rows.
	if got := int(ix.tree.Len()); got != n/2 {
		t.Fatalf("tree has %d entries after GC, want %d", got, n/2)
	}
	got := readAll(t)(tb.Query(WithIndex("by_k")))
	if len(got) != n/2 {
		t.Fatalf("%d rows after GC, want %d", len(got), n/2)
	}
	for k, v := range got {
		if k%2 != 0 || v != k+1000 {
			t.Fatalf("row %d=%d unexpected after GC", k, v)
		}
	}
	if tb.Rows() != int64(n/2) {
		t.Fatalf("Rows() = %d, want %d", tb.Rows(), n/2)
	}
}

func TestTxnGCRespectsLiveSnapshot(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	ix := tb.indexes["by_k"]

	tx := e.Begin()
	var b Batch
	b.Insert(kvRow(1, 10))
	if _, err := tx.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	snap := e.Begin() // pins version v=10

	rid, _, _ := ix.LookupRID(tuple.Int64(1))
	u := e.Begin()
	var ub Batch
	ub.Update(rid, kvRow(1, 11))
	if _, err := u.Apply(tb, &ub); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := u.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// The dead version is above the snapshot's watermark: GC must not
	// touch it.
	if removed := e.RunGC(); removed != 0 {
		t.Fatalf("RunGC removed %d with live snapshot, want 0", removed)
	}
	if got := readAll(t)(snap.Query(tb, WithIndex("by_k"))); got[1] != 10 {
		t.Fatalf("snapshot = %v, want {1:10}", got)
	}
	snap.Abort()
	if removed := e.RunGC(); removed != 1 {
		t.Fatalf("RunGC removed %d after release, want 1", removed)
	}
	if got := readAll(t)(tb.Query(WithIndex("by_k"))); got[1] != 11 {
		t.Fatalf("latest = %v, want {1:11}", got)
	}
}

// Satellite: duplicate-key attribution inside a txn batch reports the
// op index against the txn's own staged writes, not prior durable
// state.
func TestTxnStagedDuplicateAttribution(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)

	// Same key twice within one batch: ErrIndex must point at the second
	// op (index 1), which collided with op 0 of the SAME batch — durable
	// state knows nothing of this key.
	tx := e.Begin()
	var b Batch
	b.Insert(kvRow(9, 90))
	b.Insert(kvRow(9, 91))
	res, err := tx.Apply(tb, &b)
	if err == nil {
		t.Fatal("duplicate staged key should fail Apply")
	}
	if res.ErrIndex != 1 {
		t.Fatalf("ErrIndex = %d, want 1 (the second op)", res.ErrIndex)
	}
	if !strings.Contains(err.Error(), "op 0 of batch 0") {
		t.Fatalf("error %q should attribute the collision to op 0 of batch 0", err)
	}
	// The failed batch staged nothing: committing applies no rows.
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := readAll(t)(tb.Query()); len(got) != 0 {
		t.Fatalf("rows = %v, want none", got)
	}

	// Across batches of one txn: second batch's op collides with a key
	// staged by batch 0.
	tx2 := e.Begin()
	var b1, b2 Batch
	b1.Insert(kvRow(1, 10))
	b1.Insert(kvRow(2, 20))
	if _, err := tx2.Apply(tb, &b1); err != nil {
		t.Fatalf("Apply b1: %v", err)
	}
	b2.Insert(kvRow(3, 30))
	b2.Insert(kvRow(2, 21))
	res, err = tx2.Apply(tb, &b2)
	if err == nil {
		t.Fatal("cross-batch staged duplicate should fail")
	}
	if res.ErrIndex != 1 {
		t.Fatalf("ErrIndex = %d, want 1", res.ErrIndex)
	}
	if !strings.Contains(err.Error(), "op 1 of batch 0") {
		t.Fatalf("error %q should attribute to op 1 of batch 0", err)
	}
	tx2.Abort()

	// A delete of the old holder inside the txn frees the key for a
	// staged re-insert (no false duplicate), and the commit-time durable
	// check honors the freed set.
	if _, err := tb.Insert(kvRow(42, 1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	rid, _, _ := tb.indexes["by_k"].LookupRID(tuple.Int64(42))
	tx3 := e.Begin()
	var b3 Batch
	b3.Delete(rid)
	b3.Insert(kvRow(42, 2))
	if _, err := tx3.Apply(tb, &b3); err != nil {
		t.Fatalf("delete+reinsert Apply: %v", err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatalf("delete+reinsert Commit: %v", err)
	}
	if got := readAll(t)(tb.Query(WithIndex("by_k"))); got[42] != 2 {
		t.Fatalf("rows = %v, want {42:2}", got)
	}

	// Commit-time duplicate against durable state is still caught, and
	// names the staged op.
	tx4 := e.Begin()
	var b4 Batch
	b4.Insert(kvRow(42, 3))
	if _, err := tx4.Apply(tb, &b4); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx4.Commit(); err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("Commit = %v, want durable duplicate-key error", err)
	}
}

// Regression: a commit that fails after some effects landed must roll
// every one of them back — earlier tables' new versions must not stay
// visible to latest readers, staged targets must not stay marked dead,
// unique entries must point back at the surviving version, and the
// never-published timestamp must be reusable without conflating the
// failed commit's leftovers with the next successful one.
func TestTxnCommitRollbackOnMidCommitFailure(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	tb2, err := e.CreateTable("kv2", kvSchema())
	if err != nil {
		t.Fatalf("CreateTable kv2: %v", err)
	}
	if _, err := tb2.CreateIndex("by_k2", []string{"k"}); err != nil {
		t.Fatalf("CreateIndex kv2: %v", err)
	}
	ix := tb.indexes["by_k"]

	for k, v := range map[int64]int64{1: 10, 2: 20, 3: 30} {
		if _, err := tb.Insert(kvRow(k, v)); err != nil {
			t.Fatalf("seed Insert: %v", err)
		}
	}
	snap := e.Begin() // must keep reading the seed state throughout
	defer snap.Abort()
	clockBefore := e.Clock()
	deadBefore := e.deadVersions.Load()

	rid1, _, err := ix.LookupRID(tuple.Int64(1))
	if err != nil {
		t.Fatalf("LookupRID 1: %v", err)
	}
	rid2, _, err := ix.LookupRID(tuple.Int64(2))
	if err != nil {
		t.Fatalf("LookupRID 2: %v", err)
	}

	tx := e.Begin()
	var ba, bb Batch
	ba.Update(rid1, kvRow(1, 11)) // unique entry upsert (key unchanged)
	ba.Delete(rid2)
	ba.Insert(kvRow(4, 40)) // fresh unique entry
	if _, err := tx.Apply(tb, &ba); err != nil {
		t.Fatalf("Apply kv: %v", err)
	}
	bb.Insert(kvRow(9, 90))
	if _, err := tx.Apply(tb2, &bb); err != nil {
		t.Fatalf("Apply kv2: %v", err)
	}

	// kv's three heap ops land (heap, metas, entries), then kv2's heap
	// phase fails on its first op — everything must unwind.
	TestingFailCommitAfter(4)
	defer TestingFailCommitAfter(0)
	if err := tx.Commit(); !errors.Is(err, errInjectedCommitFailure) {
		t.Fatalf("Commit = %v, want injected failure", err)
	}

	if got := readAll(t)(tb.Query()); len(got) != 3 || got[1] != 10 || got[2] != 20 || got[3] != 30 {
		t.Fatalf("latest heap read after failed commit = %v, want seed state", got)
	}
	if got := readAll(t)(tb.Query(WithIndex("by_k"))); len(got) != 3 || got[1] != 10 {
		t.Fatalf("latest index read after failed commit = %v, want seed state", got)
	}
	if _, found, err := ix.LookupRID(tuple.Int64(4)); err != nil || found {
		t.Fatalf("k=4 lookup after failed commit: found=%v err=%v, want absent", found, err)
	}
	if got := readAll(t)(tb2.Query()); len(got) != 0 {
		t.Fatalf("kv2 rows after failed commit = %v, want none", got)
	}
	if tb.Rows() != 3 || tb2.Rows() != 0 {
		t.Fatalf("Rows() = %d/%d after failed commit, want 3/0", tb.Rows(), tb2.Rows())
	}
	if got := e.Clock(); got != clockBefore {
		t.Fatalf("clock = %d after failed commit, want unchanged %d", got, clockBefore)
	}
	if got := e.deadVersions.Load(); got != deadBefore {
		t.Fatalf("deadVersions = %d after failed commit, want %d", got, deadBefore)
	}

	// The reused timestamp must carry only the retry's versions: the same
	// logical changes committed now must be fully visible, and the old
	// snapshot must still see the seed state.
	retry := e.Begin()
	var rb, rb2 Batch
	rb.Update(rid1, kvRow(1, 11))
	rb.Delete(rid2)
	rb.Insert(kvRow(4, 40))
	if _, err := retry.Apply(tb, &rb); err != nil {
		t.Fatalf("retry Apply kv: %v", err)
	}
	rb2.Insert(kvRow(9, 90))
	if _, err := retry.Apply(tb2, &rb2); err != nil {
		t.Fatalf("retry Apply kv2: %v", err)
	}
	if err := retry.Commit(); err != nil {
		t.Fatalf("retry Commit: %v", err)
	}
	got := readAll(t)(tb.Query(WithIndex("by_k")))
	if len(got) != 3 || got[1] != 11 || got[3] != 30 || got[4] != 40 {
		t.Fatalf("latest after retry = %v, want {1:11 3:30 4:40}", got)
	}
	if got := readAll(t)(tb2.Query()); len(got) != 1 || got[9] != 90 {
		t.Fatalf("kv2 after retry = %v, want {9:90}", got)
	}
	if got := readAll(t)(snap.Query(tb, WithIndex("by_k"))); len(got) != 3 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("snapshot after retry = %v, want seed state", got)
	}
	snap.Abort()
	e.RunGC() // must not trip over the rollback's tombstones
	if got := readAll(t)(tb.Query(WithIndex("by_k"))); len(got) != 3 || got[1] != 11 {
		t.Fatalf("latest after GC = %v, want {1:11 3:30 4:40}", got)
	}
}

func TestTxnUseAfterFinish(t *testing.T) {
	e := newTestEngine(t)
	tb := kvTable(t, e)
	tx := e.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatalf("empty Commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second Commit = %v, want ErrTxnDone", err)
	}
	var b Batch
	b.Insert(kvRow(1, 1))
	if _, err := tx.Apply(tb, &b); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Apply after Commit = %v, want ErrTxnDone", err)
	}
	if _, err := tx.Query(tb); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Query after Commit = %v, want ErrTxnDone", err)
	}
	tx.Abort() // idempotent no-op
}

func TestTxnWALRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	e, err := NewEngine(Options{Path: path, WAL: true})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tb, err := e.CreateTable("kv", kvSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := tb.CreateIndex("by_k", []string{"k"}); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	tx := e.Begin()
	var b Batch
	for i := 0; i < 20; i++ {
		b.Insert(kvRow(int64(i), int64(i*2)))
	}
	if _, err := tx.Apply(tb, &b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Update a few and delete a few in a second txn.
	ix := tb.indexes["by_k"]
	tx2 := e.Begin()
	var b2 Batch
	for i := 0; i < 6; i++ {
		rid, _, err := ix.LookupRID(tuple.Int64(int64(i)))
		if err != nil {
			t.Fatalf("LookupRID: %v", err)
		}
		if i < 3 {
			b2.Update(rid, kvRow(int64(i), int64(i+500)))
		} else {
			b2.Delete(rid)
		}
	}
	if _, err := tx2.Apply(tb, &b2); err != nil {
		t.Fatalf("Apply 2: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("Commit 2: %v", err)
	}
	clock := e.Clock()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2, err := NewEngine(Options{Path: path, WAL: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	if got := e2.Clock(); got < clock {
		t.Fatalf("clock after reopen = %d, want >= %d", got, clock)
	}
	tb2, err := e2.Table("kv")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	got := readAll(t)(tb2.Query(WithIndex("by_k")))
	if len(got) != 17 {
		t.Fatalf("%d rows after recovery, want 17", len(got))
	}
	for i := int64(0); i < 3; i++ {
		if got[i] != i+500 {
			t.Fatalf("k=%d → %d, want %d", i, got[i], i+500)
		}
	}
	for i := int64(3); i < 6; i++ {
		if _, ok := got[i]; ok {
			t.Fatalf("deleted k=%d resurrected after recovery", i)
		}
	}
	if tb2.Rows() != 17 {
		t.Fatalf("Rows() = %d, want 17", tb2.Rows())
	}
	// New transactions allocate fresh timestamps past the recovered clock.
	tx3 := e2.Begin()
	var b3 Batch
	b3.Insert(kvRow(100, 100))
	if _, err := tx3.Apply(tb2, &b3); err != nil {
		t.Fatalf("post-recovery Apply: %v", err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatalf("post-recovery Commit: %v", err)
	}
	if e2.Clock() <= clock {
		t.Fatalf("clock did not advance past recovered value")
	}
}
