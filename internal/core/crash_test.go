package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// Crash-recovery matrix: a child process (this test binary re-execed,
// running TestCrashChild) applies a deterministic concurrent workload
// and SIGKILLs itself at a chosen pipeline point — a WAL append, a
// half-written frame, a checkpoint stage, a log truncation, a torn
// data-page write. The parent then reopens the database and asserts the
// recovery contract:
//
//   - per-worker prefix durability: some prefix of each worker's
//     batches is fully applied, nothing beyond it partially so, and
//     every batch the child acked (post-commit) is inside the prefix;
//   - heap and indexes agree row for row;
//   - the trees pass integrity checks and the engine accepts writes.
//
// Batches are all-or-nothing across the crash because each Apply is one
// WAL record: either the whole frame is durable or the torn tail is
// truncated on recovery.

const (
	crashWorkers      = 4
	crashMaxBatches   = 60
	crashInsPerBatch  = 8
	crashWorkerStride = 1_000_000
)

func crashSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "worker", Kind: tuple.KindInt32},
		tuple.Field{Name: "batch", Kind: tuple.KindInt64},
		tuple.Field{Name: "val", Kind: tuple.KindInt64},
	)
}

func crashOptions(dir string) Options {
	return Options{
		Path:            filepath.Join(dir, "db"),
		PageSize:        4096,
		BufferPoolPages: 256,
		WAL:             true,
		CheckpointBytes: 8 << 10, // checkpoint every ~10 batches
	}
}

func crashRow(w, b, j int, val int64) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(w*crashWorkerStride + b*10 + j)),
		tuple.Int32(int32(w)),
		tuple.Int64(int64(b)),
		tuple.Int64(val),
	}
}

// TestCrashChild is the workload half of the matrix; it only runs when
// re-execed by TestCrashRecoveryMatrix (NBLB_CRASH_DIR set). The crash
// point spec is "<name>:<n>" — SIGKILL self at the n-th firing of the
// named wal test point — or "data:write:<n>" — a torn data-page write
// via storage.FaultDisk at the n-th WritePage, then SIGKILL.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("NBLB_CRASH_DIR")
	if dir == "" {
		t.Skip("crash child: run by TestCrashRecoveryMatrix")
	}
	point := os.Getenv("NBLB_CRASH_POINT")
	opts := crashOptions(dir)

	die := func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) }

	if rest, ok := strings.CutPrefix(point, "data:write:"); ok {
		var n int64
		fmt.Sscanf(rest, "%d", &n)
		inner, err := storage.NewFileDisk(opts.Path, opts.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		opts.Disk = storage.NewFaultDisk(inner, storage.FaultPlan{
			Op:      storage.FaultWrite,
			After:   n,
			Mode:    storage.FaultTorn,
			Seed:    42,
			OnFault: die,
		})
	}

	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("t", crashSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_id", []string{"id"}, WithCache("val")); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_batch", []string{"batch"}, NonUnique()); err != nil {
		t.Fatal(err)
	}

	ackF, err := os.OpenFile(filepath.Join(dir, "acks"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var ackMu sync.Mutex

	// Arm the wal-point trigger only now: engine setup (initial
	// checkpoint, DDL) shouldn't consume the budget. The count is after
	// the LAST colon — point names contain colons ("wal:append").
	if cut := strings.LastIndex(point, ":"); cut >= 0 && !strings.HasPrefix(point, "data:") {
		name, nStr := point[:cut], point[cut+1:]
		var n int64
		fmt.Sscanf(nStr, "%d", &n)
		var hits atomic.Int64
		wal.SetTestHook(func(p string) {
			if p == name && hits.Add(1) == n {
				die()
			}
		})
		defer wal.SetTestHook(nil)
	}

	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prevRIDs []storage.RID
			for b := 0; b < crashMaxBatches; b++ {
				var batch Batch
				for j := 0; j < crashInsPerBatch; j++ {
					batch.Insert(crashRow(w, b, j, int64(b)))
				}
				if b > 0 {
					batch.Update(prevRIDs[0], crashRow(w, b-1, 0, int64(-b)))
					batch.Update(prevRIDs[1], crashRow(w, b-1, 1, int64(-b)))
					batch.Delete(prevRIDs[7])
				}
				res, err := tbl.Apply(&batch, WithResultRIDs())
				if err != nil {
					// The parent killed us mid-batch on another goroutine's
					// schedule, or we are the dying goroutine: stop quietly.
					return
				}
				prevRIDs = res.RIDs[:crashInsPerBatch]
				ackMu.Lock()
				fmt.Fprintf(ackF, "%d %d\n", w, b)
				ackF.Sync()
				ackMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	e.Close()
}

// crashExpected builds worker w's model state after its first k batches
// applied: id → (batch, val).
func crashExpected(w, k int) map[int64][2]int64 {
	m := make(map[int64][2]int64)
	for b := 0; b < k; b++ {
		base := int64(w*crashWorkerStride + b*10)
		for j := 0; j < crashInsPerBatch; j++ {
			m[base+int64(j)] = [2]int64{int64(b), int64(b)}
		}
		if b > 0 {
			prev := int64(w*crashWorkerStride + (b-1)*10)
			m[prev+0] = [2]int64{int64(b - 1), int64(-b)}
			m[prev+1] = [2]int64{int64(b - 1), int64(-b)}
			delete(m, prev+7)
		}
	}
	return m
}

func TestCrashRecoveryMatrix(t *testing.T) {
	if os.Getenv("NBLB_CRASH_DIR") != "" {
		t.Skip("inside crash child")
	}
	if testing.Short() {
		t.Skip("crash matrix re-execs the test binary per point")
	}
	points := []string{
		"wal:append:1",
		"wal:append:5",
		"wal:append:20",
		"wal:append-partial:2",
		"wal:append-partial:7",
		"wal:synced:2",
		"wal:synced:6",
		"ckpt:begin:1",
		"ckpt:flushed:1",
		"ckpt:manifest:1",
		"ckpt:truncated:1",
		"wal:truncate-before-rename:1",
		"wal:truncate-after-rename:1",
		"data:write:3",
		"data:write:10",
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range points {
		point := point
		t.Run(strings.ReplaceAll(point, ":", "_"), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(bin, "-test.run", "^TestCrashChild$")
			cmd.Env = append(os.Environ(),
				"NBLB_CRASH_DIR="+dir,
				"NBLB_CRASH_POINT="+point,
			)
			out, runErr := cmd.CombinedOutput()
			killed := false
			if ee, ok := runErr.(*exec.ExitError); ok {
				if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
					killed = true
				}
			}
			if runErr != nil && !killed {
				t.Fatalf("child failed (not SIGKILL): %v\n%s", runErr, out)
			}
			if !killed {
				t.Logf("point %s never fired; child completed — verifying anyway", point)
			}
			verifyCrashRecovery(t, dir)
		})
	}
}

func verifyCrashRecovery(t *testing.T, dir string) {
	t.Helper()
	// Acked batches: the child fsynced "<worker> <batch>" after each
	// commit, so every acked batch must have survived.
	acked := make([]int, crashWorkers)
	for i := range acked {
		acked[i] = -1
	}
	if f, err := os.Open(filepath.Join(dir, "acks")); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var w, b int
			if _, err := fmt.Sscanf(sc.Text(), "%d %d", &w, &b); err == nil && w < crashWorkers {
				if b > acked[w] {
					acked[w] = b
				}
			}
		}
		f.Close()
	}

	e, err := NewEngine(crashOptions(dir))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer e.Close()
	tbl, err := e.Table("t")
	if err != nil {
		t.Fatalf("table lost: %v", err)
	}

	// Gather actual per-worker state from a heap scan.
	actual := make([]map[int64][2]int64, crashWorkers)
	for w := range actual {
		actual[w] = make(map[int64][2]int64)
	}
	cur, err := tbl.Query()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for cur.Next() {
		row := cur.Row()
		w := int(row[1].Int)
		if w < 0 || w >= crashWorkers {
			t.Fatalf("row with bad worker %d", w)
		}
		id := row[0].Int
		if _, dup := actual[w][id]; dup {
			t.Fatalf("id %d appears twice in heap scan", id)
		}
		actual[w][id] = [2]int64{row[2].Int, row[3].Int}
		total++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()

	// Per-worker: find the applied prefix length via batch-0 markers
	// (id base+0 is inserted by batch b and only deleted with the whole
	// model row set — its presence marks the batch as applied), then the
	// actual state must equal the model exactly.
	for w := 0; w < crashWorkers; w++ {
		k := 0
		for b := 0; b < crashMaxBatches; b++ {
			// Batch b's marker: any of its inserted ids still expected in
			// model(k>=b+1) — use id base+2, which no later batch deletes
			// or updates.
			if _, ok := actual[w][int64(w*crashWorkerStride+b*10+2)]; ok {
				k = b + 1
			} else {
				break
			}
		}
		if acked[w] >= k {
			t.Errorf("worker %d: acked batch %d but only %d batches applied", w, acked[w], k)
		}
		exp := crashExpected(w, k)
		if len(exp) != len(actual[w]) {
			t.Errorf("worker %d (k=%d): %d rows, want %d", w, k, len(actual[w]), len(exp))
		}
		for id, want := range exp {
			got, ok := actual[w][id]
			if !ok {
				t.Errorf("worker %d: missing id %d", w, id)
				continue
			}
			if got != want {
				t.Errorf("worker %d id %d: got (batch=%d val=%d) want (batch=%d val=%d)",
					w, id, got[0], got[1], want[0], want[1])
			}
		}
		for id := range actual[w] {
			if _, ok := exp[id]; !ok {
				t.Errorf("worker %d: unexpected id %d (partial batch leaked)", w, id)
			}
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := tbl.Rows(); got != int64(total) {
		t.Fatalf("Rows()=%d but heap scan saw %d", got, total)
	}

	// Heap ↔ index cross-consistency plus tree integrity.
	byID := mustIndex(t, tbl, "by_id")
	byBatch := mustIndex(t, tbl, "by_batch")
	if err := byID.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("by_id integrity: %v", err)
	}
	if err := byBatch.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("by_batch integrity: %v", err)
	}
	if got := byID.Tree().Len(); got != int64(total) {
		t.Fatalf("by_id has %d entries, heap has %d rows", got, total)
	}
	if got := byBatch.Tree().Len(); got != int64(total) {
		t.Fatalf("by_batch has %d entries, heap has %d rows", got, total)
	}
	for w := 0; w < crashWorkers; w++ {
		for id, want := range actual[w] {
			row, _, err := byID.Lookup(nil, tuple.Int64(id))
			if err != nil {
				t.Fatalf("by_id lookup %d: %v", id, err)
			}
			if row[3].Int != want[1] {
				t.Fatalf("by_id lookup %d: val %d, heap has %d", id, row[3].Int, want[1])
			}
		}
	}

	// The recovered engine must accept new writes end to end.
	if _, err := tbl.Insert(crashRow(0, crashMaxBatches+1, 9, 7)); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}
