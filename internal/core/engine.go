// Package core is the storage engine tying the substrates together:
// tables on heap files, B+Tree indexes with the Section 2.1 index cache,
// point lookups answered from the index when possible, and updates that
// keep cache consistency via the predicate log.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// Options configure an Engine.
type Options struct {
	// PageSize in bytes. Defaults to storage.DefaultPageSize.
	PageSize int
	// BufferPoolPages is the pool capacity in pages. Defaults to 4096.
	BufferPoolPages int
	// PoolShards overrides the buffer pool's shard count (must be a
	// power of two). 0 picks automatically from GOMAXPROCS and the
	// capacity. Benchmarks use 1 to reproduce the single-mutex pool.
	PoolShards int
	// HeapInsertShards is the default heap insert shard count for
	// tables created on this engine (per-table WithHeapInsertShards
	// wins). 0 picks automatically (min(8, GOMAXPROCS)); 1 reproduces
	// the classic single-mutex heap insert path.
	HeapInsertShards int
	// Path, when non-empty, backs the engine with a file on disk;
	// otherwise an in-memory disk is used.
	Path string
	// CountIO wraps the disk in a storage.CountingDisk so experiments
	// can convert I/O counts into simulated time.
	CountIO bool
	// WAL enables write-ahead logging with crash recovery. Requires
	// Path: the log, manifest, and double-write files live beside the
	// database file (<Path>.wal, <Path>.manifest, <Path>.dw). Opening a
	// WAL engine replays any suffix a crash left behind.
	WAL bool
	// SyncPolicy selects commit durability under WAL (default
	// SyncGroupCommit). Ignored without WAL.
	SyncPolicy SyncPolicy
	// CheckpointBytes is the WAL size that triggers an automatic
	// checkpoint (default 4 MiB). Ignored without WAL.
	CheckpointBytes int64
	// Disk, when non-nil, is used instead of the Path/MemDisk default —
	// fault-injection tests wrap a storage.FaultDisk here. With WAL,
	// Path is still required for the log-side files.
	Disk storage.DiskManager
}

// EngineOption mutates Options — the facade's functional-option form.
type EngineOption func(*Options)

// WithWAL enables write-ahead logging (see Options.WAL).
func WithWAL() EngineOption {
	return func(o *Options) { o.WAL = true }
}

// WithSyncPolicy sets the commit durability policy (see SyncPolicy).
func WithSyncPolicy(p SyncPolicy) EngineOption {
	return func(o *Options) { o.SyncPolicy = p }
}

// WithCheckpointEvery sets the WAL growth budget between automatic
// checkpoints.
func WithCheckpointEvery(bytes int64) EngineOption {
	return func(o *Options) { o.CheckpointBytes = bytes }
}

// Engine is an embedded storage engine instance.
type Engine struct {
	pool    *buffer.Pool
	disk    storage.DiskManager
	counter *storage.CountingDisk // nil unless Options.CountIO

	heapShards int // default insert shard count for new tables' heaps

	// WAL state (nil/zero without Options.WAL). commitGate orders
	// mutations against checkpoints and GC: every Apply, txn commit,
	// and DDL holds it shared across mutate+log-append; a checkpoint or
	// GC pass holds it exclusively. Lock order: txnMu, then commitGate,
	// then e.mu, then t.mu, then a table's vers.mu; the log's own mutex
	// is innermost. txnMu must NEVER be acquired with commitGate held
	// (raw stamps allocate via rawStampTS before the gate): a pending
	// gate writer blocks new shared acquisitions, so gate-then-txnMu
	// deadlocks against Txn.Commit's txnMu-then-gate.
	wal          *wal.Log
	walPath      string
	manifestPath string
	dwPath       string
	syncPolicy   SyncPolicy
	ckptBytes    int64
	commitGate   sync.RWMutex // nblb:lock commitGate
	ckptMu       sync.Mutex   // serializes checkpoints; nblb:lock ckptMu
	wbPool       sync.Pool    // *walBatch encoders, recycled across Applies

	mu     sync.RWMutex // nblb:lock engine-mu
	tables map[string]*Table

	// MVCC state (see mvcc.go and txn.go). clock is the last committed
	// transaction timestamp; txnMu serializes Txn.Commit critical
	// sections (timestamp allocation + conflict check + effects);
	// snapMu guards the active-snapshot registry the GC watermark is
	// computed from. Raw Apply never touches any of this — a workload
	// that never calls Begin pays one atomic load per visibility check
	// at most.
	clock        atomic.Uint64
	txnMu        sync.Mutex     // nblb:lock txnMu
	snapMu       sync.Mutex     // nblb:lock snapMu
	snaps        map[uint64]int // startTS → live snapshot count
	deadVersions atomic.Int64   // GC backlog: versions awaiting physical removal
}

// NewEngine creates an engine with the given options. Functional
// options, when given, are applied to opts first — the facade's
// Open(Options, ...EngineOption) form.
func NewEngine(opts Options, extra ...EngineOption) (*Engine, error) {
	for _, o := range extra {
		o(&opts)
	}
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.BufferPoolPages == 0 {
		opts.BufferPoolPages = 4096
	}
	if opts.WAL && opts.Path == "" {
		return nil, fmt.Errorf("core: WAL requires Options.Path")
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = 4 << 20
	}
	var (
		disk storage.DiskManager
		err  error
	)
	switch {
	case opts.Disk != nil:
		disk = opts.Disk
	case opts.Path != "":
		disk, err = storage.NewFileDisk(opts.Path, opts.PageSize)
	default:
		disk, err = storage.NewMemDisk(opts.PageSize)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{
		tables:     make(map[string]*Table),
		heapShards: opts.HeapInsertShards,
		syncPolicy: opts.SyncPolicy,
		ckptBytes:  opts.CheckpointBytes,
	}
	if opts.CountIO {
		e.counter = storage.NewCountingDisk(disk)
		disk = e.counter
	}
	e.disk = disk
	if opts.PoolShards > 0 {
		e.pool, err = buffer.NewPoolShards(disk, opts.BufferPoolPages, opts.PoolShards)
	} else {
		e.pool, err = buffer.NewPool(disk, opts.BufferPoolPages)
	}
	if err != nil {
		disk.Close()
		return nil, err
	}
	if opts.WAL {
		e.walPath = opts.Path + ".wal"
		e.manifestPath = opts.Path + ".manifest"
		e.dwPath = opts.Path + ".dw"
		e.pool.SetNoSteal(true)
		if err := e.recover(); err != nil {
			if e.wal != nil {
				e.wal.Close()
			}
			disk.Close()
			return nil, fmt.Errorf("core: recovery: %w", err)
		}
	}
	return e, nil
}

// Pool exposes the buffer pool (stats, experiments).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// IOCounter returns the counting disk wrapper, or nil when CountIO was
// not requested.
func (e *Engine) IOCounter() *storage.CountingDisk { return e.counter }

// CreateTable registers a new table with the given schema.
func (e *Engine) CreateTable(name string, schema *tuple.Schema, opts ...TableOption) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("core: table name must not be empty")
	}
	if e.wal != nil {
		e.commitGate.RLock()
		defer e.commitGate.RUnlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[name]; exists {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	t, err := newTable(e, name, schema, opts...)
	if err != nil {
		return nil, err
	}
	e.tables[name] = t
	if e.wal != nil {
		rec := ddlCreateTable{
			Name:             name,
			Fields:           manifestFields(schema),
			AppendOnly:       t.cfg.appendOnly,
			HeapFillFactor:   t.cfg.heapFillFactor,
			HeapInsertShards: t.file.InsertShards(), // resolved, not the request
		}
		lsn, err := e.wal.Append(recCreateTable, encodeJSON(rec))
		if err != nil {
			delete(e.tables, name)
			return nil, err
		}
		if err := e.walCommit(lsn); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table returns the named table, or an error.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// Tables returns the table names in sorted order.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes a table and its indexes from the catalog. Pages are
// not reclaimed (the engine has no free-page list; dropped data is
// simply unreachable), which is fine for experiment lifetimes.
func (e *Engine) DropTable(name string) error {
	if e.wal != nil {
		e.commitGate.RLock()
		defer e.commitGate.RUnlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; !ok {
		return fmt.Errorf("core: no table %q", name)
	}
	delete(e.tables, name)
	if e.wal != nil {
		lsn, err := e.wal.Append(recDropTable, []byte(name))
		if err != nil {
			return err
		}
		return e.walCommit(lsn)
	}
	return nil
}

// Restart simulates a crash/restart cycle for cache-consistency tests:
// all dirty pages flush, every frame is evicted, and each table's
// cached indexes bump their CSNidx so persisted stale cache bytes can
// never be served (the Section 2.1.2 full-invalidation path).
func (e *Engine) Restart() error {
	if e.wal != nil {
		// A checkpoint is the WAL engine's flush: it cleans every dirty
		// frame, which EvictAll below needs under the no-steal policy.
		if err := e.Checkpoint(); err != nil {
			return err
		}
	} else if err := e.pool.FlushAll(); err != nil {
		return err
	}
	if err := e.pool.EvictAll(); err != nil {
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, t := range e.tables {
		for _, ix := range t.indexes {
			if ix.cache != nil {
				ix.cache.InvalidateAll()
			}
		}
	}
	return nil
}

// Close flushes and releases the engine. The disk is closed even when
// the flush (or final checkpoint) fails — resources are never leaked on
// an error path — and every failure is reported joined.
func (e *Engine) Close() error {
	if e.wal != nil {
		err := e.Checkpoint()
		return errors.Join(err, e.wal.Close(), e.disk.Close())
	}
	return errors.Join(e.pool.FlushAll(), e.disk.Close())
}
