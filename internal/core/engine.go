// Package core is the storage engine tying the substrates together:
// tables on heap files, B+Tree indexes with the Section 2.1 index cache,
// point lookups answered from the index when possible, and updates that
// keep cache consistency via the predicate log.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Options configure an Engine.
type Options struct {
	// PageSize in bytes. Defaults to storage.DefaultPageSize.
	PageSize int
	// BufferPoolPages is the pool capacity in pages. Defaults to 4096.
	BufferPoolPages int
	// PoolShards overrides the buffer pool's shard count (must be a
	// power of two). 0 picks automatically from GOMAXPROCS and the
	// capacity. Benchmarks use 1 to reproduce the single-mutex pool.
	PoolShards int
	// HeapInsertShards is the default heap insert shard count for
	// tables created on this engine (per-table WithHeapInsertShards
	// wins). 0 picks automatically (min(8, GOMAXPROCS)); 1 reproduces
	// the classic single-mutex heap insert path.
	HeapInsertShards int
	// Path, when non-empty, backs the engine with a file on disk;
	// otherwise an in-memory disk is used.
	Path string
	// CountIO wraps the disk in a storage.CountingDisk so experiments
	// can convert I/O counts into simulated time.
	CountIO bool
}

// Engine is an embedded storage engine instance.
type Engine struct {
	pool    *buffer.Pool
	disk    storage.DiskManager
	counter *storage.CountingDisk // nil unless Options.CountIO

	heapShards int // default insert shard count for new tables' heaps

	mu     sync.RWMutex
	tables map[string]*Table
}

// NewEngine creates an engine with the given options.
func NewEngine(opts Options) (*Engine, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.BufferPoolPages == 0 {
		opts.BufferPoolPages = 4096
	}
	var (
		disk storage.DiskManager
		err  error
	)
	if opts.Path != "" {
		disk, err = storage.NewFileDisk(opts.Path, opts.PageSize)
	} else {
		disk, err = storage.NewMemDisk(opts.PageSize)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{tables: make(map[string]*Table), heapShards: opts.HeapInsertShards}
	if opts.CountIO {
		e.counter = storage.NewCountingDisk(disk)
		disk = e.counter
	}
	e.disk = disk
	if opts.PoolShards > 0 {
		e.pool, err = buffer.NewPoolShards(disk, opts.BufferPoolPages, opts.PoolShards)
	} else {
		e.pool, err = buffer.NewPool(disk, opts.BufferPoolPages)
	}
	if err != nil {
		disk.Close()
		return nil, err
	}
	return e, nil
}

// Pool exposes the buffer pool (stats, experiments).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// IOCounter returns the counting disk wrapper, or nil when CountIO was
// not requested.
func (e *Engine) IOCounter() *storage.CountingDisk { return e.counter }

// CreateTable registers a new table with the given schema.
func (e *Engine) CreateTable(name string, schema *tuple.Schema, opts ...TableOption) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("core: table name must not be empty")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[name]; exists {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	t, err := newTable(e, name, schema, opts...)
	if err != nil {
		return nil, err
	}
	e.tables[name] = t
	return t, nil
}

// Table returns the named table, or an error.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// Tables returns the table names in sorted order.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes a table and its indexes from the catalog. Pages are
// not reclaimed (the engine has no free-page list; dropped data is
// simply unreachable), which is fine for experiment lifetimes.
func (e *Engine) DropTable(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; !ok {
		return fmt.Errorf("core: no table %q", name)
	}
	delete(e.tables, name)
	return nil
}

// Restart simulates a crash/restart cycle for cache-consistency tests:
// all dirty pages flush, every frame is evicted, and each table's
// cached indexes bump their CSNidx so persisted stale cache bytes can
// never be served (the Section 2.1.2 full-invalidation path).
func (e *Engine) Restart() error {
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	if err := e.pool.EvictAll(); err != nil {
		return err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, t := range e.tables {
		for _, ix := range t.indexes {
			if ix.cache != nil {
				ix.cache.InvalidateAll()
			}
		}
	}
	return nil
}

// Close flushes and releases the engine.
func (e *Engine) Close() error {
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	return e.disk.Close()
}
