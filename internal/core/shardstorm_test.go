package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tuple"
)

// TestEvictionStormAcrossShards runs concurrent Lookup / Insert /
// WarmCache traffic against an engine whose buffer pool is explicitly
// multi-shard and far smaller than the working set, so victim selection
// constantly crosses shard boundaries (frames migrate between shards
// under steal). Run with -race; values served must always be exactly
// what was inserted.
func TestEvictionStormAcrossShards(t *testing.T) {
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 48, PoolShards: 4})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	if got := e.Pool().NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	tb, err := e.CreateTable("page", pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	const preload = 800 // working set of heap+leaf pages ≫ 48 frames
	for i := 0; i < preload; i++ {
		if _, err := tb.Insert(pageRow(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	ix, err := tb.CreateIndex("name_title", []string{"namespace", "title"},
		WithCache("latest_rev", "len"), WithCacheSeed(1))
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})

	// Readers: point lookups over the preloaded range.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make(tuple.Row, 0, 2)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (g*41 + n*13) % preload
				key := []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
				row, res, err := ix.LookupInto(buf, []string{"latest_rev", "len"}, key...)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("reader %d: row %d vanished", g, i)
					return
				}
				if row[0].Int != int64(i*10) || row[1].Int != int64(100+i) {
					errs <- fmt.Errorf("reader %d: row %d served %d/%d", g, i, row[0].Int, row[1].Int)
					return
				}
				buf = row
			}
		}(g)
	}
	// Batch reader: LookupMany over shuffled key groups.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			keys := make([][]tuple.Value, 24)
			for k := range keys {
				i := (n*29 + k*67) % preload
				keys[k] = []tuple.Value{tuple.Int32(0), tuple.String(fmt.Sprintf("Title_%05d", i))}
			}
			rows, res, err := ix.LookupMany([]string{"latest_rev"}, keys)
			if err != nil {
				errs <- fmt.Errorf("batch reader: %w", err)
				return
			}
			for k := range keys {
				i := (n*29 + k*67) % preload
				if !res[k].Found || rows[k][0].Int != int64(i*10) {
					errs <- fmt.Errorf("batch reader: key %d wrong", i)
					return
				}
			}
		}
	}()
	// Warmer: repeatedly refills leaf caches while eviction drops them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.WarmCache(); err != nil {
				errs <- fmt.Errorf("warmer: %w", err)
				return
			}
		}
	}()
	// Writer: inserts fresh rows (new keys) driving splits and evictions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := preload; i < preload+300; i++ {
			if _, err := tb.Insert(pageRow(i)); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
		close(stop)
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Tree().CheckIntegrity(); err != nil {
		t.Fatalf("integrity after storm: %v", err)
	}
	st := e.Pool().Stats()
	if st.Evictions == 0 {
		t.Error("storm over a 48-frame pool should have evicted")
	}
	if n := e.Pool().ResidentPages(); n > 48 {
		t.Errorf("ResidentPages = %d exceeds capacity 48", n)
	}
}
