package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func walTestOptions(dir string) Options {
	return Options{
		Path:            filepath.Join(dir, "db"),
		PageSize:        4096,
		BufferPoolPages: 256,
		WAL:             true,
	}
}

func reopenSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "grp", Kind: tuple.KindInt32},
		tuple.Field{Name: "val", Kind: tuple.KindInt64},
		tuple.Field{Name: "name", Kind: tuple.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func reopenRow(i int) tuple.Row {
	return tuple.Row{
		tuple.Int64(int64(i)),
		tuple.Int32(int32(i % 7)),
		tuple.Int64(int64(i * 100)),
		tuple.String(fmt.Sprintf("row-%04d", i)),
	}
}

// TestReopenCleanClose is the no-crash durability regression: build a
// database on a FileDisk, close it cleanly, reopen it, and verify the
// catalog, row contents in both heap and index order, point lookups,
// and cached lookups all survived the round trip.
func TestReopenCleanClose(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOptions(dir)

	const rows = 500
	deleted := map[int]bool{}

	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("users", reopenSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < rows; i++ {
		b.Insert(reopenRow(i))
	}
	if _, err := tbl.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_id", []string{"id"}, WithCache("val")); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_grp", []string{"grp"}, NonUnique()); err != nil {
		t.Fatal(err)
	}
	// Post-index churn so the WAL holds index runs too: update a third,
	// delete a tenth.
	for i := 0; i < rows; i += 3 {
		rid, okk, err := mustIndex(t, tbl, "by_id").LookupRID(tuple.Int64(int64(i)))
		if err != nil || !okk {
			t.Fatalf("lookup rid %d: ok=%v err=%v", i, okk, err)
		}
		row := reopenRow(i)
		row[2] = tuple.Int64(int64(i*100 + 1))
		if _, err := tbl.Update(rid, row); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < rows; i += 10 {
		rid, okk, err := mustIndex(t, tbl, "by_id").LookupRID(tuple.Int64(int64(i)))
		if err != nil || !okk {
			t.Fatalf("lookup rid %d: ok=%v err=%v", i, okk, err)
		}
		if err := tbl.Delete(rid); err != nil {
			t.Fatal(err)
		}
		deleted[i] = true
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen and verify everything.
	e2, err := NewEngine(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	if got := e2.Tables(); len(got) != 1 || got[0] != "users" {
		t.Fatalf("tables after reopen: %v", got)
	}
	tbl2, err := e2.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	live := rows - len(deleted)
	if got := tbl2.Rows(); got != int64(live) {
		t.Fatalf("rows after reopen: got %d want %d", got, live)
	}
	if names := schemaFieldNames(tbl2.Schema()); len(names) != 4 || names[0] != "id" || names[3] != "name" {
		t.Fatalf("schema after reopen: %v", names)
	}
	ixs := tbl2.Indexes()
	if len(ixs) != 2 || ixs["by_id"] == nil || ixs["by_grp"] == nil {
		t.Fatalf("indexes after reopen: %v", ixs)
	}

	wantVal := func(i int) int64 {
		if i%3 == 0 {
			return int64(i*100 + 1)
		}
		return int64(i * 100)
	}

	// Heap-order cursor.
	seen := map[int64]bool{}
	cur, err := tbl2.Query()
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
		row := cur.Row()
		id := row[0].Int
		if deleted[int(id)] {
			t.Fatalf("deleted row %d visible after reopen", id)
		}
		if seen[id] {
			t.Fatalf("row %d seen twice", id)
		}
		seen[id] = true
		if got := row[2].Int; got != wantVal(int(id)) {
			t.Fatalf("row %d: val %d want %d", id, got, wantVal(int(id)))
		}
		if got := row[3].Str; got != fmt.Sprintf("row-%04d", id) {
			t.Fatalf("row %d: name %q", id, got)
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if len(seen) != live {
		t.Fatalf("heap scan saw %d rows, want %d", len(seen), live)
	}

	// Index-order cursor over the non-unique index.
	byGrp := ixs["by_grp"]
	n := 0
	prev := int32(-1)
	icur, err := byGrp.Query()
	if err != nil {
		t.Fatal(err)
	}
	for icur.Next() {
		g := int32(icur.Row()[1].Int)
		if g < prev {
			t.Fatalf("by_grp out of order: %d after %d", g, prev)
		}
		prev = g
		n++
	}
	if err := icur.Err(); err != nil {
		t.Fatal(err)
	}
	icur.Close()
	if n != live {
		t.Fatalf("index scan saw %d rows, want %d", n, live)
	}

	// Point lookups, twice: the first pass seeds the reopened (cold)
	// index cache, the second must serve identical data — stale bytes a
	// pre-close leaf flush persisted must never surface.
	byID := ixs["by_id"]
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < rows; i++ {
			row, _, err := byID.Lookup([]string{"id", "val"}, tuple.Int64(int64(i)))
			if deleted[i] {
				if err == nil && row != nil {
					t.Fatalf("pass %d: deleted row %d found", pass, i)
				}
				continue
			}
			if err != nil {
				t.Fatalf("pass %d: lookup %d: %v", pass, i, err)
			}
			if got := row[1].Int; got != wantVal(i) {
				t.Fatalf("pass %d: lookup %d: val %d want %d", pass, i, got, wantVal(i))
			}
		}
	}

	// The engine must still accept writes after recovery.
	if _, err := tbl2.Insert(reopenRow(rows + 1)); err != nil {
		t.Fatalf("insert after reopen: %v", err)
	}
}

// TestReopenSecondGeneration closes and reopens twice, with writes in
// between — the second recovery starts from the first recovery's
// terminal checkpoint.
func TestReopenSecondGeneration(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOptions(dir)

	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("kv", reopenSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("by_id", []string{"id"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(reopenRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = NewEngine(opts)
	if err != nil {
		t.Fatalf("first reopen: %v", err)
	}
	tbl, err = e.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		if _, err := tbl.Insert(reopenRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = NewEngine(opts)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer e.Close()
	tbl, err = e.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rows(); got != 200 {
		t.Fatalf("rows: got %d want 200", got)
	}
	ix, err := tbl.Index("by_id")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := ix.Lookup(nil, tuple.Int64(int64(i))); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
}

// TestDropTableSurvivesReopen verifies DDL replay handles drops: a
// table created and dropped before the crash horizon must not
// resurrect.
func TestDropTableSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOptions(dir)

	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("keep", reopenSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("gone", reopenSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e, err = NewEngine(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e.Close()
	if got := e.Tables(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("tables after reopen: %v", got)
	}
}

// TestWALRequiresPath pins the constructor contract.
func TestWALRequiresPath(t *testing.T) {
	if _, err := NewEngine(Options{WAL: true}); err == nil {
		t.Fatal("WAL without Path should fail")
	}
}

// TestCloseRemovesNothing sanity-checks the side files a WAL engine
// leaves behind: database, wal, manifest — and no stale .dw.
func TestCloseRemovesNothing(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOptions(dir)
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("t", reopenSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"db", "db.wal", "db.manifest"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s after close: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "db.dw")); !os.IsNotExist(err) {
		t.Fatalf("stale double-write file after clean close (err=%v)", err)
	}
}

func schemaFieldNames(s *tuple.Schema) []string {
	fs := s.Fields()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

func mustIndex(t *testing.T, tbl *Table, name string) *Index {
	t.Helper()
	ix, err := tbl.Index(name)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}
