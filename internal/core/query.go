package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/tuple"
)

// CachePolicy selects how a query answers projections.
type CachePolicy int

const (
	// CacheFirst (the default) answers coverable projections from the
	// §2.1 index cache in leaf free space, falling back to the heap per
	// row on cache misses. Range scans probe the cache but never fill
	// it — filling on scans would flood the slots with cold tuples.
	CacheFirst CachePolicy = iota
	// HeapOnly bypasses the index cache entirely and fetches every row
	// from the heap — the baseline the paper's measurements compare
	// against, and the right choice when a scan must see heap bytes.
	HeapOnly
)

// QueryOption configures Table.Query and Index.Query.
type QueryOption func(*queryConfig)

type queryConfig struct {
	index    string
	lo, hi   []tuple.Value
	prefix   []tuple.Value
	project  []string
	limit    int
	reverse  bool
	policy   CachePolicy
	filters  []Filter
	parallel int
	merge    MergeMode
	snap     uint64
	snapSet  bool
}

// snapshotTS is the effective read timestamp: the pinned snapshot when
// one was set (Txn.Query), else snapLatest.
func (c *queryConfig) snapshotTS() uint64 {
	if c.snapSet {
		return c.snap
	}
	return snapLatest
}

// withSnapshot pins the query to read as-of ts — the Txn.Query path.
// Snapshot reads bypass the index cache (HeapOnly): cached payloads
// always describe the newest version, and a pinned snapshot may need an
// older one.
func withSnapshot(ts uint64) QueryOption {
	return func(c *queryConfig) {
		c.snap, c.snapSet = ts, true
		c.policy = HeapOnly
	}
}

// WithIndex routes a Table.Query through the named index, yielding rows
// in key order and enabling key bounds. Invalid on Index.Query.
func WithIndex(name string) QueryOption {
	return func(c *queryConfig) { c.index = name }
}

// WithKeyRange bounds an index query to lo ≤ key < hi. Either side may
// be nil (unbounded). Bounds may be a prefix of the index's key fields:
// a one-field lo on a two-field index starts at the first key whose
// leading field reaches lo.
func WithKeyRange(lo, hi []tuple.Value) QueryOption {
	return func(c *queryConfig) { c.lo, c.hi = lo, hi }
}

// WithPrefix bounds an index query to keys whose leading fields equal
// vals exactly — the non-unique "all entries for this key" read.
// Mutually exclusive with WithKeyRange.
func WithPrefix(vals ...tuple.Value) QueryOption {
	return func(c *queryConfig) { c.prefix = vals }
}

// WithProjection restricts rows to the named fields, in that order.
// Index queries resolve the projection through the copy-on-write plan
// cache, so a projection covered by key + cached fields is answered
// from the index cache without touching the heap.
func WithProjection(fields ...string) QueryOption {
	return func(c *queryConfig) { c.project = fields }
}

// WithLimit stops the cursor after n rows (0 = unlimited).
func WithLimit(n int) QueryOption {
	return func(c *queryConfig) { c.limit = n }
}

// WithReverse iterates the range in descending key order (index
// queries) or reverse heap order (table queries). Reverse index scans
// pay one descent per leaf — leaves only chain rightward.
func WithReverse() QueryOption {
	return func(c *queryConfig) { c.reverse = true }
}

// WithCachePolicy selects CacheFirst (default) or HeapOnly.
func WithCachePolicy(p CachePolicy) QueryOption {
	return func(c *queryConfig) { c.policy = p }
}

// WithParallel executes an index range scan as per-subtree segments on
// n workers, each driving its own pinned-frame cursor and emitting
// vectorized row blocks. n ≤ 1 keeps the serial path. Results arrive
// in key order by default (loser-tree merge over segment heads); pass
// WithMergeMode(MergeUnordered) to interleave for maximum throughput.
// Parallel scans require an index and forward iteration; WithLimit
// still bounds the row count (under MergeUnordered the limited prefix
// is whichever rows arrived first). See Cursor.SegmentStats for
// per-segment accounting.
func WithParallel(n int) QueryOption {
	return func(c *queryConfig) { c.parallel = n }
}

// WithMergeMode selects how a parallel query's segment streams combine:
// MergeOrdered (default) or MergeUnordered. No effect on serial
// queries.
func WithMergeMode(m MergeMode) QueryOption {
	return func(c *queryConfig) { c.merge = m }
}

// Query opens a cursor over the table. With no options it streams every
// row in heap order; WithIndex switches to key order and enables key
// bounds. See Cursor for the iteration contract and pin lifetime —
// callers own the returned cursor and must Close it (or drain it, or
// range over All) to release its leaf pin.
//
// Queries never block writers: an open cursor holds a pin, not a
// latch, between Next calls, and re-validates its position against the
// per-leaf version counter, so rows present when the scan reached
// their leaf are served exactly once even while concurrent writers
// split the scanned leaves.
func (t *Table) Query(opts ...QueryOption) (*Cursor, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		ix, err := t.Index(cfg.index)
		if err != nil {
			return nil, err
		}
		return ix.query(cfg)
	}
	if cfg.lo != nil || cfg.hi != nil || cfg.prefix != nil {
		return nil, fmt.Errorf("core: key bounds on %q require an index (add WithIndex)", t.name)
	}
	if cfg.parallel > 1 {
		return nil, fmt.Errorf("core: WithParallel on %q requires an index (add WithIndex)", t.name)
	}
	projIdx, err := t.projPositions(cfg.project)
	if err != nil {
		return nil, err
	}
	filters, err := t.heapFilters(cfg.filters)
	if err != nil {
		return nil, err
	}
	return &Cursor{
		src:     &heapSource{t: t, pages: t.file.Pages(), reverse: cfg.reverse, projIdx: projIdx, filters: filters, snap: cfg.snapshotTS()},
		limit:   cfg.limit,
		reverse: cfg.reverse,
	}, nil
}

// Query opens a cursor over the index's key range. The default policy
// answers coverable projections straight from the index cache. The
// cursor contract (pin lifetime, Close, scratch rows, writer
// interaction) is the same as Table.Query's.
func (ix *Index) Query(opts ...QueryOption) (*Cursor, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		return nil, fmt.Errorf("core: WithIndex is only valid on Table.Query")
	}
	return ix.query(cfg)
}

func (ix *Index) query(cfg queryConfig) (*Cursor, error) {
	plan, fp, start, end, err := ix.resolveQuery(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.parallel > 1 {
		if cfg.reverse {
			return nil, fmt.Errorf("core: WithParallel does not support WithReverse")
		}
		return ix.parallelQuery(cfg, plan, fp, start, end)
	}
	s := ix.newIndexSource(start, end, plan, fp, cfg.policy, cfg.reverse)
	s.snap = cfg.snapshotTS()
	return &Cursor{src: s, limit: cfg.limit, reverse: cfg.reverse}, nil
}

// resolveQuery turns a queryConfig into the pieces every index read
// path shares: the projection plan, the classified filter plan, and the
// encoded key bounds.
func (ix *Index) resolveQuery(cfg queryConfig) (plan *projPlan, fp *filterPlan, start, end []byte, err error) {
	if cfg.prefix != nil && (cfg.lo != nil || cfg.hi != nil) {
		return nil, nil, nil, nil, fmt.Errorf("core: WithPrefix and WithKeyRange are mutually exclusive")
	}
	if plan, err = ix.resolveProjection(cfg.project); err != nil {
		return nil, nil, nil, nil, err
	}
	if fp, err = ix.buildFilterPlan(cfg.filters); err != nil {
		return nil, nil, nil, nil, err
	}
	if cfg.prefix != nil {
		p, perr := ix.boundKey(cfg.prefix)
		if perr != nil {
			return nil, nil, nil, nil, perr
		}
		start, end = p, prefixSuccessor(p)
	} else {
		if start, err = ix.boundKey(cfg.lo); err != nil {
			return nil, nil, nil, nil, err
		}
		if end, err = ix.boundKey(cfg.hi); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return plan, fp, start, end, nil
}

// useScanCache reports whether a scan should probe the §2.1 cache: the
// policy allows it, the index has one, and either the projection is
// coverable (cache hits answer rows) or cached-tier filters exist
// (cache hits reject rows before the heap).
func (ix *Index) useScanCache(policy CachePolicy, plan *projPlan, fp *filterPlan) bool {
	if policy != CacheFirst || ix.cache == nil {
		return false
	}
	return plan.coverable || (fp != nil && len(fp.cached) > 0)
}

// newIndexSource builds the serial row source over encoded bounds —
// shared by Query and the per-segment fallback path of Aggregate.
func (ix *Index) newIndexSource(start, end []byte, plan *projPlan, fp *filterPlan, policy CachePolicy, reverse bool) *indexSource {
	s := &indexSource{ix: ix, plan: plan, fp: fp, snap: snapLatest}
	s.keyKinds = make([]tuple.Kind, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		s.keyKinds[i] = ix.table.schema.Field(pos).Kind
	}
	var bopts []btree.CursorOption
	if reverse {
		bopts = append(bopts, btree.Reverse())
	}
	if ix.useScanCache(policy, plan, fp) {
		// Probe the cache under the latch the cursor already holds: the
		// §2.1.1 leaf-answer flow, batched into the scan.
		bopts = append(bopts, btree.WithEntryVisitor(func(l *btree.Leaf, pos int) {
			s.hit = false
			if !ix.cache.Prepare(l) {
				return
			}
			if p, ok := ix.cache.LookupInto(s.payload[:0], l, l.ValueAt(pos)); ok {
				s.payload = p
				s.hit = true
			}
		}))
	}
	s.bt = ix.tree.NewCursor(start, end, bopts...)
	return s
}

// boundKey encodes a (possibly partial) key bound, kind-checking each
// value against the corresponding key field.
func (ix *Index) boundKey(vals []tuple.Value) ([]byte, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	if len(vals) > len(ix.keyFields) {
		return nil, fmt.Errorf("core: index %q: bound has %d values, index has %d key fields",
			ix.name, len(vals), len(ix.keyFields))
	}
	for i, v := range vals {
		want := ix.table.schema.Field(ix.keyFields[i]).Kind
		if v.Kind != want {
			return nil, fmt.Errorf("core: index %q bound field %d: kind %v, want %v", ix.name, i, v.Kind, want)
		}
	}
	return tuple.EncodeKey(nil, vals...)
}

// projPositions maps projected names to schema positions (nil = all
// fields, signalled by a nil slice).
func (t *Table) projPositions(project []string) ([]int, error) {
	if project == nil {
		return nil, nil
	}
	idx := make([]int, len(project))
	for i, name := range project {
		pos := t.schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("core: projection field %q not in %s", name, t.schema)
		}
		idx[i] = pos
	}
	return idx, nil
}
