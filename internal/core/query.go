package core

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/tuple"
)

// CachePolicy selects how a query answers projections.
type CachePolicy int

const (
	// CacheFirst (the default) answers coverable projections from the
	// §2.1 index cache in leaf free space, falling back to the heap per
	// row on cache misses. Range scans probe the cache but never fill
	// it — filling on scans would flood the slots with cold tuples.
	CacheFirst CachePolicy = iota
	// HeapOnly bypasses the index cache entirely and fetches every row
	// from the heap — the baseline the paper's measurements compare
	// against, and the right choice when a scan must see heap bytes.
	HeapOnly
)

// QueryOption configures Table.Query and Index.Query.
type QueryOption func(*queryConfig)

type queryConfig struct {
	index   string
	lo, hi  []tuple.Value
	prefix  []tuple.Value
	project []string
	limit   int
	reverse bool
	policy  CachePolicy
}

// WithIndex routes a Table.Query through the named index, yielding rows
// in key order and enabling key bounds. Invalid on Index.Query.
func WithIndex(name string) QueryOption {
	return func(c *queryConfig) { c.index = name }
}

// WithKeyRange bounds an index query to lo ≤ key < hi. Either side may
// be nil (unbounded). Bounds may be a prefix of the index's key fields:
// a one-field lo on a two-field index starts at the first key whose
// leading field reaches lo.
func WithKeyRange(lo, hi []tuple.Value) QueryOption {
	return func(c *queryConfig) { c.lo, c.hi = lo, hi }
}

// WithPrefix bounds an index query to keys whose leading fields equal
// vals exactly — the non-unique "all entries for this key" read.
// Mutually exclusive with WithKeyRange.
func WithPrefix(vals ...tuple.Value) QueryOption {
	return func(c *queryConfig) { c.prefix = vals }
}

// WithProjection restricts rows to the named fields, in that order.
// Index queries resolve the projection through the copy-on-write plan
// cache, so a projection covered by key + cached fields is answered
// from the index cache without touching the heap.
func WithProjection(fields ...string) QueryOption {
	return func(c *queryConfig) { c.project = fields }
}

// WithLimit stops the cursor after n rows (0 = unlimited).
func WithLimit(n int) QueryOption {
	return func(c *queryConfig) { c.limit = n }
}

// WithReverse iterates the range in descending key order (index
// queries) or reverse heap order (table queries). Reverse index scans
// pay one descent per leaf — leaves only chain rightward.
func WithReverse() QueryOption {
	return func(c *queryConfig) { c.reverse = true }
}

// WithCachePolicy selects CacheFirst (default) or HeapOnly.
func WithCachePolicy(p CachePolicy) QueryOption {
	return func(c *queryConfig) { c.policy = p }
}

// Query opens a cursor over the table. With no options it streams every
// row in heap order; WithIndex switches to key order and enables key
// bounds. See Cursor for the iteration contract and pin lifetime —
// callers own the returned cursor and must Close it (or drain it, or
// range over All) to release its leaf pin.
//
// Queries never block writers: an open cursor holds a pin, not a
// latch, between Next calls, and re-validates its position against the
// per-leaf version counter, so rows present when the scan reached
// their leaf are served exactly once even while concurrent writers
// split the scanned leaves.
func (t *Table) Query(opts ...QueryOption) (*Cursor, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		ix, err := t.Index(cfg.index)
		if err != nil {
			return nil, err
		}
		return ix.query(cfg)
	}
	if cfg.lo != nil || cfg.hi != nil || cfg.prefix != nil {
		return nil, fmt.Errorf("core: key bounds on %q require an index (add WithIndex)", t.name)
	}
	projIdx, err := t.projPositions(cfg.project)
	if err != nil {
		return nil, err
	}
	return &Cursor{
		src:     &heapSource{t: t, pages: t.file.Pages(), reverse: cfg.reverse, projIdx: projIdx},
		limit:   cfg.limit,
		reverse: cfg.reverse,
	}, nil
}

// Query opens a cursor over the index's key range. The default policy
// answers coverable projections straight from the index cache. The
// cursor contract (pin lifetime, Close, scratch rows, writer
// interaction) is the same as Table.Query's.
func (ix *Index) Query(opts ...QueryOption) (*Cursor, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.index != "" {
		return nil, fmt.Errorf("core: WithIndex is only valid on Table.Query")
	}
	return ix.query(cfg)
}

func (ix *Index) query(cfg queryConfig) (*Cursor, error) {
	if cfg.prefix != nil && (cfg.lo != nil || cfg.hi != nil) {
		return nil, fmt.Errorf("core: WithPrefix and WithKeyRange are mutually exclusive")
	}
	plan, err := ix.resolveProjection(cfg.project)
	if err != nil {
		return nil, err
	}
	var start, end []byte
	if cfg.prefix != nil {
		p, err := ix.boundKey(cfg.prefix)
		if err != nil {
			return nil, err
		}
		start, end = p, prefixSuccessor(p)
	} else {
		if start, err = ix.boundKey(cfg.lo); err != nil {
			return nil, err
		}
		if end, err = ix.boundKey(cfg.hi); err != nil {
			return nil, err
		}
	}
	s := &indexSource{ix: ix, plan: plan}
	s.keyKinds = make([]tuple.Kind, len(ix.keyFields))
	for i, pos := range ix.keyFields {
		s.keyKinds[i] = ix.table.schema.Field(pos).Kind
	}
	var bopts []btree.CursorOption
	if cfg.reverse {
		bopts = append(bopts, btree.Reverse())
	}
	if cfg.policy == CacheFirst && ix.cache != nil && plan.coverable {
		// Probe the cache under the latch the cursor already holds: the
		// §2.1.1 leaf-answer flow, batched into the scan.
		bopts = append(bopts, btree.WithEntryVisitor(func(l *btree.Leaf, pos int) {
			s.hit = false
			if !ix.cache.Prepare(l) {
				return
			}
			if p, ok := ix.cache.LookupInto(s.payload[:0], l, l.ValueAt(pos)); ok {
				s.payload = p
				s.hit = true
			}
		}))
	}
	s.bt = ix.tree.NewCursor(start, end, bopts...)
	return &Cursor{src: s, limit: cfg.limit, reverse: cfg.reverse}, nil
}

// boundKey encodes a (possibly partial) key bound, kind-checking each
// value against the corresponding key field.
func (ix *Index) boundKey(vals []tuple.Value) ([]byte, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	if len(vals) > len(ix.keyFields) {
		return nil, fmt.Errorf("core: index %q: bound has %d values, index has %d key fields",
			ix.name, len(vals), len(ix.keyFields))
	}
	for i, v := range vals {
		want := ix.table.schema.Field(ix.keyFields[i]).Kind
		if v.Kind != want {
			return nil, fmt.Errorf("core: index %q bound field %d: kind %v, want %v", ix.name, i, v.Kind, want)
		}
	}
	return tuple.EncodeKey(nil, vals...)
}

// projPositions maps projected names to schema positions (nil = all
// fields, signalled by a nil slice).
func (t *Table) projPositions(project []string) ([]int, error) {
	if project == nil {
		return nil, nil
	}
	idx := make([]int, len(project))
	for i, name := range project {
		pos := t.schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("core: projection field %q not in %s", name, t.schema)
		}
		idx[i] = pos
	}
	return idx, nil
}
