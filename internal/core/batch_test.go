package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// fixedSchema is all fixed-width kinds, so every encoded row has the
// same size and in-place updates never relocate — the storm tests rely
// on RIDs staying put.
func fixedSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.KindInt64},
		tuple.Field{Name: "a", Kind: tuple.KindInt64},
		tuple.Field{Name: "b", Kind: tuple.KindInt32},
	)
}

// fixedRow builds a row whose fields satisfy checkInvariant.
func fixedRow(id, a int64) tuple.Row {
	return tuple.Row{
		tuple.Int64(id),
		tuple.Int64(a),
		tuple.Int32(int32((id + a) % 9973)),
	}
}

// checkInvariant reports whether a (possibly projected id,a,b) row is
// internally consistent — i.e. was written by fixedRow in one piece.
func checkInvariant(row tuple.Row) bool {
	if len(row) != 3 {
		return false
	}
	return row[2].Int == (row[0].Int+row[1].Int)%9973
}

func newBatchFixture(t *testing.T, cached bool) (*Table, *Index) {
	t.Helper()
	e, err := NewEngine(Options{PageSize: 1024, BufferPoolPages: 4096})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	tb, err := e.CreateTable("t", fixedSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	var opts []IndexOption
	if cached {
		opts = append(opts, WithCache("a", "b"))
	}
	ix, err := tb.CreateIndex("by_id", []string{"id"}, opts...)
	if err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	return tb, ix
}

func TestApplyBasics(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	var b Batch
	for i := 0; i < 500; i++ {
		b.Insert(fixedRow(int64(i), int64(i*7)))
	}
	res, err := tb.Apply(&b, WithResultRIDs())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 500 || res.ErrIndex != -1 || len(res.RIDs) != 500 {
		t.Fatalf("Result = %+v", res)
	}
	if tb.Rows() != 500 {
		t.Errorf("Rows = %d, want 500", tb.Rows())
	}
	for i, rid := range res.RIDs {
		row, err := tb.Get(rid)
		if err != nil {
			t.Fatalf("Get op %d: %v", i, err)
		}
		if row[0].Int != int64(i) {
			t.Fatalf("op %d RID points at id %d", i, row[0].Int)
		}
	}
	// Update a stripe and delete another in one batch.
	b.Reset()
	for i := 0; i < 500; i++ {
		switch i % 5 {
		case 0:
			b.Update(res.RIDs[i], fixedRow(int64(i), int64(i*7+1)))
		case 1:
			b.Delete(res.RIDs[i])
		}
	}
	res2, err := tb.Apply(&b, WithResultRIDs())
	if err != nil {
		t.Fatalf("Apply 2: %v", err)
	}
	if res2.Applied != b.Len() {
		t.Fatalf("Applied = %d, want %d", res2.Applied, b.Len())
	}
	if want := int64(500 - 100); tb.Rows() != want {
		t.Errorf("Rows = %d, want %d", tb.Rows(), want)
	}
	for i := 0; i < 500; i++ {
		row, lres, err := ix.Lookup(nil, tuple.Int64(int64(i)))
		if err != nil {
			t.Fatalf("Lookup %d: %v", i, err)
		}
		switch i % 5 {
		case 0:
			if !lres.Found || row[1].Int != int64(i*7+1) {
				t.Fatalf("updated id %d: found=%v a=%v", i, lres.Found, row)
			}
		case 1:
			if lres.Found {
				t.Fatalf("deleted id %d still indexed", i)
			}
		default:
			if !lres.Found || row[1].Int != int64(i*7) {
				t.Fatalf("untouched id %d: found=%v", i, lres.Found)
			}
		}
	}
	if tr := ix.Tree(); tr.Len() != 400 {
		t.Errorf("index Len = %d, want 400", tr.Len())
	}
	// Update ops report the row's (here unchanged) RID.
	for i := 0; i < b.Len(); i++ {
		if op := b.Op(i); op.Kind == BatchUpdate && res2.RIDs[i] != op.RID {
			t.Errorf("update op %d relocated a fixed-width row: %v → %v", i, op.RID, res2.RIDs[i])
		}
	}
}

func TestApplyFirstErrorTruncates(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	var b Batch
	b.Insert(fixedRow(1, 10))
	b.Insert(fixedRow(2, 20))
	// A kind-mismatched row fails pre-flight encoding.
	b.Insert(tuple.Row{tuple.Int32(3), tuple.Int64(0), tuple.Int32(0)})
	b.Insert(fixedRow(4, 40))
	res, err := tb.Apply(&b, WithResultRIDs())
	if err == nil {
		t.Fatal("Apply succeeded over a bad row")
	}
	if res.ErrIndex != 2 {
		t.Errorf("ErrIndex = %d, want 2", res.ErrIndex)
	}
	if res.Applied != 2 {
		t.Errorf("Applied = %d, want 2 (prefix applies)", res.Applied)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tb.Rows())
	}
	for _, id := range []int64{1, 2} {
		if _, lres, err := ix.Lookup(nil, tuple.Int64(id)); err != nil || !lres.Found {
			t.Errorf("prefix id %d: found=%v err=%v", id, lres.Found, err)
		}
	}
	if _, lres, _ := ix.Lookup(nil, tuple.Int64(4)); lres.Found {
		t.Error("op after the failed one was applied")
	}
	if res.RIDs[3].Valid() {
		t.Error("op after the failed one got a RID")
	}
	// A delete of a dead RID fails pre-flight too.
	b.Reset()
	b.Delete(storage.RID{Page: 9999, Slot: 0})
	if _, err := tb.Apply(&b); err == nil {
		t.Error("delete of a bogus RID succeeded")
	}
}

// TestApplyErrorStillReportsHeapRIDs pins the contract HotCold's
// forwarding depends on: when a later stage fails the batch, the RIDs
// of ops whose heap writes already landed are still reported.
func TestApplyErrorStillReportsHeapRIDs(t *testing.T) {
	tb, _ := newBatchFixture(t, false)
	if _, err := tb.Insert(fixedRow(7, 70)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var b Batch
	b.Insert(fixedRow(50, 0))
	b.Insert(fixedRow(7, 71)) // duplicate key: fails in the index stage
	res, err := tb.Apply(&b, WithResultRIDs())
	if err == nil {
		t.Fatal("duplicate not reported")
	}
	if !res.RIDs[0].Valid() {
		t.Error("op 0 reached the heap but its RID was not reported")
	}
	if row, gerr := tb.Get(res.RIDs[0]); gerr != nil || row[0].Int != 50 {
		t.Errorf("reported RID does not hold op 0's row: %v %v", row, gerr)
	}
}

func TestApplyDuplicateKeyAttribution(t *testing.T) {
	tb, _ := newBatchFixture(t, false)
	if _, err := tb.Insert(fixedRow(7, 70)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var b Batch
	b.Insert(fixedRow(100, 0))
	b.Insert(fixedRow(7, 71)) // collides with the preloaded key
	b.Insert(fixedRow(101, 0))
	res, err := tb.Apply(&b)
	if err == nil {
		t.Fatal("duplicate key not reported")
	}
	if res.ErrIndex != 1 {
		t.Errorf("ErrIndex = %d, want 1", res.ErrIndex)
	}
}

func TestApplySyncIndexesEquivalent(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	var b Batch
	for i := 0; i < 200; i++ {
		b.Insert(fixedRow(int64(i), int64(i)))
	}
	res, err := tb.Apply(&b, WithSyncIndexes(), WithResultRIDs())
	if err != nil || res.Applied != 200 {
		t.Fatalf("Apply sync: %+v, %v", res, err)
	}
	b.Reset()
	for i := 0; i < 200; i += 2 {
		b.Update(res.RIDs[i], fixedRow(int64(i), int64(i+1)))
	}
	b.Delete(res.RIDs[199])
	if _, err := tb.Apply(&b, WithSyncIndexes()); err != nil {
		t.Fatalf("Apply sync 2: %v", err)
	}
	if tb.Rows() != 199 {
		t.Errorf("Rows = %d, want 199", tb.Rows())
	}
	for i := 0; i < 200; i += 2 {
		row, lres, err := ix.Lookup(nil, tuple.Int64(int64(i)))
		if err != nil || !lres.Found || row[1].Int != int64(i+1) {
			t.Fatalf("id %d after sync update: %v %v %v", i, row, lres, err)
		}
	}
}

// TestApplyStormVsCacheFirstScan is the batch-vs-readers atomicity
// test: an 8-goroutine Apply storm (batched inserts of disjoint
// ascending stripes + batched in-place updates) runs while CacheFirst
// cursors scan the cached index mid-storm. Per-op atomicity means a
// scan never observes a half-applied row: every projected row must
// satisfy the fixedRow invariant — whether it was assembled from the
// index cache or fetched from the heap — keys must ascend, and the
// cursor must never error (no index entry may dangle into a freed heap
// slot). Run under -race in CI.
func TestApplyStormVsCacheFirstScan(t *testing.T) {
	tb, ix := newBatchFixture(t, true)
	const (
		preload   = 2000
		inserters = 4
		updaters  = 4
		batchSize = 64
		batches   = 25
	)
	preRIDs := make([]storage.RID, preload)
	{
		var b Batch
		for i := 0; i < preload; i++ {
			b.Insert(fixedRow(int64(i), int64(i)))
		}
		res, err := tb.Apply(&b, WithResultRIDs())
		if err != nil {
			t.Fatalf("preload: %v", err)
		}
		copy(preRIDs, res.RIDs)
	}
	if _, err := ix.WarmCache(); err != nil {
		t.Fatalf("WarmCache: %v", err)
	}

	var writersWG, scannerWG sync.WaitGroup
	errCh := make(chan error, inserters+updaters+1)
	var stop atomic.Bool
	for w := 0; w < inserters; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			var b Batch
			for bn := 0; bn < batches; bn++ {
				b.Reset()
				base := preload + (w*batches+bn)*batchSize
				for i := 0; i < batchSize; i++ {
					id := int64(base + i)
					b.Insert(fixedRow(id, id*3))
				}
				if _, err := tb.Apply(&b); err != nil {
					errCh <- fmt.Errorf("inserter %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < updaters; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			var b Batch
			for bn := 0; bn < batches; bn++ {
				b.Reset()
				for i := 0; i < batchSize; i++ {
					// Disjoint update targets per worker (stride), fresh
					// consistent contents per round.
					slot := (w + (bn*batchSize+i)*updaters) % preload
					id := int64(slot)
					b.Update(preRIDs[slot], fixedRow(id, id+int64(bn)*1000))
				}
				if _, err := tb.Apply(&b); err != nil {
					errCh <- fmt.Errorf("updater %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	scannerWG.Add(1)
	go func() {
		defer scannerWG.Done()
		for !stop.Load() {
			cur, err := tb.Query(
				WithIndex("by_id"),
				WithProjection("id", "a", "b"),
				WithCachePolicy(CacheFirst),
			)
			if err != nil {
				errCh <- err
				return
			}
			prev := int64(-1)
			for cur.Next() {
				row := cur.Row()
				if !checkInvariant(row) {
					errCh <- fmt.Errorf("half-applied row observed: %v", row.Clone())
					cur.Close()
					return
				}
				if row[0].Int <= prev {
					errCh <- fmt.Errorf("keys out of order: %d after %d", row[0].Int, prev)
					cur.Close()
					return
				}
				prev = row[0].Int
			}
			if err := cur.Close(); err != nil {
				errCh <- fmt.Errorf("mid-storm cursor error: %w", err)
				return
			}
		}
	}()

	writersWG.Wait()
	stop.Store(true)
	scannerWG.Wait()
	close(errCh)
	wantRows := int64(preload + inserters*batches*batchSize)
	for err := range errCh {
		t.Fatal(err)
	}
	if tb.Rows() != wantRows {
		t.Errorf("Rows = %d, want %d", tb.Rows(), wantRows)
	}
	// Post-storm: a full scan with stats must see every row, consistent.
	cur, err := tb.Query(WithIndex("by_id"), WithProjection("id", "a", "b"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	rows := 0
	for cur.Next() {
		if !checkInvariant(cur.Row()) {
			t.Fatalf("inconsistent row after storm: %v", cur.Row())
		}
		rows++
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	if int64(rows) != wantRows {
		t.Errorf("scan saw %d rows, want %d", rows, wantRows)
	}
}

// TestApplyErrorIsolation covers the coalescer's contract: under
// WithErrorIsolation a bad op fails alone — pre-flight failures,
// duplicate keys, and dead-RID deletes never take neighbors down.
func TestApplyErrorIsolation(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	if _, err := tb.Insert(fixedRow(7, 70)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var b Batch
	b.Insert(fixedRow(1, 10))
	// Kind-mismatched row: fails pre-flight encoding.
	b.Insert(tuple.Row{tuple.Int32(2), tuple.Int64(0), tuple.Int32(0)})
	b.Insert(fixedRow(3, 30))
	b.Insert(fixedRow(7, 71)) // duplicate key: fails in the index stage
	b.Delete(storage.RID{Page: 9999, Slot: 0})
	b.Insert(fixedRow(4, 40))
	res, err := tb.Apply(&b, WithErrorIsolation(), WithResultRIDs())
	if err != nil {
		t.Fatalf("Apply returned a batch error under isolation: %v", err)
	}
	if res.Err != nil {
		t.Errorf("Result.Err = %v, want nil (per-op failures only)", res.Err)
	}
	if res.Applied != 3 {
		t.Errorf("Applied = %d, want 3", res.Applied)
	}
	if res.ErrIndex != 1 {
		t.Errorf("ErrIndex = %d, want 1 (lowest failed op)", res.ErrIndex)
	}
	wantFail := map[int]bool{1: true, 3: true, 4: true}
	for i := 0; i < b.Len(); i++ {
		if got := res.OpErrs[i] != nil; got != wantFail[i] {
			t.Errorf("op %d: err = %v, want failed=%v", i, res.OpErrs[i], wantFail[i])
		}
	}
	// Every op around the failures applied end to end.
	for _, id := range []int64{1, 3, 4} {
		if _, lres, err := ix.Lookup(nil, tuple.Int64(id)); err != nil || !lres.Found {
			t.Errorf("isolated neighbor id %d: found=%v err=%v", id, lres.Found, err)
		}
	}
	// The duplicate's heap write landed before detection
	// (damage-then-report, same as the default mode) so its RID is
	// reported even though the op failed.
	if !res.RIDs[3].Valid() {
		t.Error("duplicate op reached the heap but its RID was not reported")
	}
}

// TestApplyErrorIsolationSync is the same contract on the
// WithSyncIndexes (batch-order) path.
func TestApplyErrorIsolationSync(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	if _, err := tb.Insert(fixedRow(7, 70)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var b Batch
	b.Insert(fixedRow(1, 10))
	b.Insert(fixedRow(7, 71)) // duplicate
	b.Insert(fixedRow(2, 20))
	res, err := tb.Apply(&b, WithSyncIndexes(), WithErrorIsolation())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 2 || res.OpErrs[1] == nil || res.OpErrs[0] != nil || res.OpErrs[2] != nil {
		t.Fatalf("Result = %+v", res)
	}
	for _, id := range []int64{1, 2} {
		if _, lres, err := ix.Lookup(nil, tuple.Int64(id)); err != nil || !lres.Found {
			t.Errorf("neighbor id %d: found=%v err=%v", id, lres.Found, err)
		}
	}
}

// TestApplyErrorIsolationIntraBatchDuplicate: two inserts of the same
// unique key inside one isolated batch — exactly one wins, the loser
// is attributed, neighbors apply.
func TestApplyErrorIsolationIntraBatchDuplicate(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	var b Batch
	b.Insert(fixedRow(10, 1))
	b.Insert(fixedRow(50, 1))
	b.Insert(fixedRow(50, 2))
	b.Insert(fixedRow(11, 1))
	res, err := tb.Apply(&b, WithErrorIsolation())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 3 {
		t.Errorf("Applied = %d, want 3", res.Applied)
	}
	dupFails := 0
	for _, i := range []int{1, 2} {
		if res.OpErrs[i] != nil {
			dupFails++
		}
	}
	if dupFails != 1 {
		t.Errorf("%d of the colliding inserts failed, want exactly 1", dupFails)
	}
	if res.OpErrs[0] != nil || res.OpErrs[3] != nil {
		t.Errorf("neighbors failed: %v %v", res.OpErrs[0], res.OpErrs[3])
	}
	for _, id := range []int64{10, 11, 50} {
		if _, lres, err := ix.Lookup(nil, tuple.Int64(id)); err != nil || !lres.Found {
			t.Errorf("id %d: found=%v err=%v", id, lres.Found, err)
		}
	}
}

// TestApplyIsolationMixedOps exercises updates and deletes through the
// isolated grouped pipeline: a dead update target fails alone while
// surrounding updates and deletes of live rows apply.
func TestApplyIsolationMixedOps(t *testing.T) {
	tb, ix := newBatchFixture(t, false)
	var seed Batch
	for i := 0; i < 8; i++ {
		seed.Insert(fixedRow(int64(i), int64(i)))
	}
	sres, err := tb.Apply(&seed, WithResultRIDs())
	if err != nil {
		t.Fatalf("seed: %v", err)
	}
	var b Batch
	b.Update(sres.RIDs[0], fixedRow(0, 100))
	b.Update(storage.RID{Page: 9999, Slot: 3}, fixedRow(1, 101)) // dead target
	b.Delete(sres.RIDs[2])
	b.Update(sres.RIDs[3], fixedRow(3, 103))
	res, err := tb.Apply(&b, WithErrorIsolation())
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if res.Applied != 3 || res.OpErrs[1] == nil {
		t.Fatalf("Result = %+v", res)
	}
	if tb.Rows() != 7 {
		t.Errorf("Rows = %d, want 7", tb.Rows())
	}
	if row, lres, err := ix.Lookup(nil, tuple.Int64(0)); err != nil || !lres.Found || row[1].Int != 100 {
		t.Errorf("updated row 0: %v %v %v", row, lres, err)
	}
	if row, lres, err := ix.Lookup(nil, tuple.Int64(3)); err != nil || !lres.Found || row[1].Int != 103 {
		t.Errorf("updated row 3: %v %v %v", row, lres, err)
	}
	if _, lres, _ := ix.Lookup(nil, tuple.Int64(2)); lres.Found {
		t.Error("deleted row 2 still indexed")
	}
}
