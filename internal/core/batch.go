package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// BatchOpKind tags one queued Batch operation.
type BatchOpKind uint8

const (
	// BatchInsert adds a new row.
	BatchInsert BatchOpKind = iota
	// BatchUpdate replaces the row at a RID.
	BatchUpdate
	// BatchDelete removes the row at a RID.
	BatchDelete
)

// BatchOp is the public view of one queued operation (Batch.Op), enough
// for callers that post-process Apply results — e.g. the hot/cold
// partition recording forwarding entries for relocated updates.
type BatchOp struct {
	Kind BatchOpKind
	// RID is the update/delete target (InvalidRID for inserts).
	RID storage.RID
}

type batchOp struct {
	kind BatchOpKind
	row  tuple.Row // insert/update: the new row (aliased, not copied)
	rid  storage.RID
}

// Batch accumulates mutations for Table.Apply — the write-side builder
// that is to Insert/Update/Delete what Query is to Scan. A zero Batch
// is ready to use:
//
//	var b core.Batch
//	b.Insert(row1).Insert(row2)
//	b.Update(rid, row3)
//	b.Delete(rid2)
//	res, err := tbl.Apply(&b)
//
// Rows are aliased, not copied: they must stay unchanged until Apply
// returns. A Batch is not safe for concurrent use, but many goroutines
// may Apply distinct batches to one table in parallel. Ops within one
// batch must target distinct rows and index keys — Apply reorders work
// across ops (heap runs, key-sorted index runs), so the relative order
// of two ops touching the same key is unspecified unless
// WithSyncIndexes pins batch order.
type Batch struct {
	ops []batchOp
}

// Insert queues a row insert. Returns the batch for chaining.
func (b *Batch) Insert(row tuple.Row) *Batch {
	b.ops = append(b.ops, batchOp{kind: BatchInsert, row: row})
	return b
}

// Update queues replacing the row at rid with row.
func (b *Batch) Update(rid storage.RID, row tuple.Row) *Batch {
	b.ops = append(b.ops, batchOp{kind: BatchUpdate, row: row, rid: rid})
	return b
}

// Delete queues removing the row at rid.
func (b *Batch) Delete(rid storage.RID) *Batch {
	b.ops = append(b.ops, batchOp{kind: BatchDelete, rid: rid})
	return b
}

// Len returns the number of queued ops.
func (b *Batch) Len() int { return len(b.ops) }

// Op returns the i-th queued op's kind and target.
func (b *Batch) Op(i int) BatchOp {
	op := b.ops[i]
	return BatchOp{Kind: op.kind, RID: op.rid}
}

// Reset empties the batch for reuse, keeping its capacity.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// ApplyOption configures Table.Apply.
type ApplyOption func(*applyConfig)

type applyConfig struct {
	sync     bool
	fill     float64
	wantRIDs bool
	isolate  bool
	// stamp is the commit timestamp raw inserts are born at when a
	// snapshot is pinned (0 = no snapshot open, no metadata written).
	// See Engine.rawStampTS.
	stamp uint64
}

// WithSyncIndexes applies each op's index maintenance immediately after
// its heap write, in batch order — the one-row path's interleaving.
// This forfeits the leaf-grouped runs (one descent per key again) but
// preserves the relative order of ops touching the same key, so it is
// the right mode for batches with intra-batch dependencies.
func WithSyncIndexes() ApplyOption {
	return func(c *applyConfig) { c.sync = true }
}

// WithBatchFillFactor caps how full this batch's heap inserts pack any
// page (fraction of the page size), overriding the table's
// WithHeapFillFactor for the run only — bulk loads that want extra
// update headroom get it without reconfiguring the table. 0 keeps the
// table policy.
func WithBatchFillFactor(ff float64) ApplyOption {
	return func(c *applyConfig) { c.fill = ff }
}

// WithResultRIDs makes Apply record each op's resulting RID in
// Result.RIDs (inserts: the new row; updates: the possibly relocated
// row; deletes: InvalidRID). Off by default — the slice is one
// allocation a fire-and-forget ingest batch does not need.
func WithResultRIDs() ApplyOption {
	return func(c *applyConfig) { c.wantRIDs = true }
}

// WithErrorIsolation switches Apply from prefix semantics to per-op
// isolation: an op whose failure is attributable (bad row encoding, a
// missing update/delete target, a duplicate unique key) is recorded in
// Result.OpErrs and skipped, and every other op still applies. The
// network server's cross-connection coalescer depends on this — one
// client's duplicate key must never fail a neighbor's op that happens
// to share the drained batch.
//
// Under isolation Result.ErrIndex points at the lowest failed op and
// OpErrs holds each op's error, but Result.Err stays nil — Apply
// returns a nil error when every failure was per-op. Only a
// non-attributable failure (an I/O error mid-run) sets Err and is
// returned, and it also fails every op that had not completed by
// then. A failed duplicate insert leaves an orphaned heap row behind
// (its row was written before the collision was detected) but never
// touches the surviving row's index entries, exactly as in the
// default mode.
func WithErrorIsolation() ApplyOption {
	return func(c *applyConfig) { c.isolate = true }
}

// Result reports what one Apply did.
//
// The contract is per-op, not transactional: each op applies
// independently and becomes visible to concurrent readers atomically
// per structure (heap row before its index entries for inserts, index
// entries removed before the heap row for deletes), so a reader never
// observes a half-applied row — but there is no all-or-nothing batch
// and no rollback. On error, ops before ErrIndex are applied, the op
// at ErrIndex and everything after are not; when the error arose below
// the per-op stage (an I/O failure mid-run), Applied is a lower bound
// and later ops may be partially indexed.
type Result struct {
	// Applied counts ops applied end to end.
	Applied int
	// ErrIndex is the batch position of the first failed op, -1 when
	// every op applied (or the failure was not attributable to one op).
	ErrIndex int
	// Err is the first error encountered (also returned by Apply).
	Err error
	// RIDs holds each op's resulting RID when WithResultRIDs was given.
	// Each entry is filled the moment the op's heap write lands, so on
	// a failed batch the RIDs of ops that did reach the heap are still
	// reported (ops that never ran stay InvalidRID).
	RIDs []storage.RID
	// OpErrs holds each op's error under WithErrorIsolation (nil entry
	// = the op applied). Nil without the option.
	OpErrs []error
}

// fail records the first error on the result and returns it.
func (r *Result) fail(i int, err error) error {
	if r.Err == nil {
		r.ErrIndex, r.Err = i, err
	}
	return r.Err
}

// failOp records an op-attributable failure under isolation: the op's
// error lands in OpErrs, ErrIndex tracks the lowest failed position,
// and the batch carries on. Result.Err is deliberately not touched —
// per-op failures do not fail an isolated batch.
func (r *Result) failOp(i int, err error) {
	if r.OpErrs[i] == nil {
		r.OpErrs[i] = err
	}
	if r.ErrIndex == -1 || i < r.ErrIndex {
		r.ErrIndex = i
	}
}

// failRemaining marks every op that has not already failed with err —
// isolation's handling of a non-attributable mid-run failure, where
// "which ops completed" is unknowable below the per-op stage.
func (r *Result) failRemaining(err error) {
	for i := range r.OpErrs {
		if r.OpErrs[i] == nil {
			r.OpErrs[i] = err
		}
	}
}

// opState carries an op's pre-flight products through the stages.
type opState struct {
	rec    []byte    // encoded new row (insert/update)
	oldRow tuple.Row // pre-image (update/delete)
	newRID storage.RID
	skip   bool // isolation: op failed, keep it out of later stages
}

// Apply executes the batch against the table and every index. See
// Result for the per-op-atomicity contract and Batch for aliasing and
// intra-batch ordering rules.
//
// The default mode amortizes per-op costs across the batch:
//
//  1. Pre-flight: rows encode and pre-images load, in batch order; the
//     first failure truncates the batch at that op.
//  2. Index deletes (delete ops) apply per index as key-sorted
//     leaf-grouped runs (btree.Tree.ApplyRun) — entries leave the
//     indexes before their heap rows die, so readers cannot chase a
//     freed RID.
//  3. Heap: deletes and updates per RID, inserts dispatched through the
//     sharded heap in shard-affine runs (heap.File.InsertRun) under one
//     shard-mutex acquisition instead of one per row.
//  4. Index upserts (inserts, update key moves) apply as key-sorted
//     leaf-grouped runs: one crabbed descent and one exclusive leaf
//     latch per leaf run instead of per key.
//
// Like every table write, Apply holds the table mutex only shared (to
// pin the index set): parallel Applies contend per heap shard and per
// index leaf, never on the table.
//
// nblb:commit-entry — the audited mutate+log-append critical section.
func (t *Table) Apply(b *Batch, opts ...ApplyOption) (Result, error) {
	var cfg applyConfig
	for _, o := range opts {
		o(&cfg)
	}
	res := Result{ErrIndex: -1}
	if b == nil || len(b.ops) == 0 {
		return res, nil
	}
	ops := b.ops
	if cfg.wantRIDs {
		res.RIDs = make([]storage.RID, len(ops))
		for i := range res.RIDs {
			res.RIDs[i] = storage.InvalidRID
		}
	}
	if cfg.isolate {
		res.OpErrs = make([]error, len(ops))
	}

	e := t.engine
	var wb *walBatch
	if e.wal != nil {
		wb = e.getWALBatch(t.name)
	}
	// The raw commit stamp allocates BEFORE the gate: rawStampTS takes
	// txnMu, and the engine-wide lock order is txnMu before commitGate
	// (Txn.Commit holds txnMu across its gated section). Taking txnMu
	// with the gate held shared would deadlock the moment a gate writer
	// (checkpoint, GC) is pending: the writer waits for this reader, a
	// committer holding txnMu waits for the writer, and this reader
	// waits for the committer's txnMu.
	cfg.stamp = e.rawStampTS()
	// The whole mutate+log-append runs inside the commit gate (shared):
	// under WAL so a checkpoint can never observe effects whose record
	// is half-appended, and even without one because RunGC holds the
	// gate exclusively and relies on it to serialize its heap and tree
	// surgery against concurrent raw mutations. The fsync happens after
	// the gate drops — holding it across disk latency would stall
	// checkpoints for nothing.
	e.commitGate.RLock()
	t.mu.RLock()

	// Pre-flight, in batch order. A failure here truncates the batch
	// (ops before it proceed through the stages, it and everything
	// after are never started) — or, under isolation, fails just the
	// offending op and keeps going.
	st := make([]opState, len(ops))
	n := len(ops)
	for i := range ops {
		op := &ops[i]
		var err error
		switch op.kind {
		case BatchInsert:
			st[i].rec, err = tuple.Encode(t.schema, op.row, nil)
			if err != nil {
				err = fmt.Errorf("core: encoding row for %q: %w", t.name, err)
			}
		case BatchUpdate:
			if st[i].oldRow, err = t.Get(op.rid); err != nil {
				err = fmt.Errorf("core: update of %v: %w", op.rid, err)
			} else if st[i].rec, err = tuple.Encode(t.schema, op.row, nil); err != nil {
				err = fmt.Errorf("core: encoding row for %q: %w", t.name, err)
			}
		case BatchDelete:
			if st[i].oldRow, err = t.Get(op.rid); err != nil {
				err = fmt.Errorf("core: delete of %v: %w", op.rid, err)
			}
		}
		if err != nil {
			if cfg.isolate {
				res.failOp(i, err)
				st[i].skip = true
				continue
			}
			res.fail(i, err)
			n = i
			break
		}
	}

	// A one-op batch (the Insert/Update/Delete wrappers) has nothing to
	// amortize: the sync path is the classic one-row pipeline without
	// the grouped stages' run scaffolding. The batch fill override is
	// the one thing only the grouped heap stage implements.
	if cfg.sync || (n == 1 && cfg.fill == 0) {
		t.applySync(ops[:n], st[:n], &res, cfg, wb)
	} else {
		t.applyGrouped(ops[:n], st[:n], &res, cfg, wb)
	}

	// Commit epilogue. The record is appended even for a failed batch —
	// its logged actions are exactly the effects that landed (damage-
	// then-report), so recovery reproduces them.
	var lsn uint64
	if !wb.empty() {
		if l, aerr := e.wal.Append(recBatch, wb.payload()); aerr != nil {
			res.fail(-1, aerr)
		} else {
			lsn = l
		}
	}
	t.mu.RUnlock()
	e.commitGate.RUnlock()
	if wb != nil {
		e.putWALBatch(wb)
		if lsn != 0 {
			if cerr := e.walCommit(lsn); cerr != nil {
				res.fail(-1, cerr)
			}
		}
		e.maybeCheckpoint()
	}
	return res, res.Err
}

// applySync is the batch-order mode: each op runs the classic one-row
// pipeline (heap write, then per-index maintenance) before the next op
// starts. Every landed effect is logged to wb in effect order.
func (t *Table) applySync(ops []batchOp, st []opState, res *Result, cfg applyConfig, wb *walBatch) {
	for i := range ops {
		if st[i].skip {
			continue
		}
		op := &ops[i]
		var err error
		switch op.kind {
		case BatchInsert:
			var rid storage.RID
			if cfg.stamp != 0 {
				// Insert and meta land in one exclusive section so a heap
				// scanner that copied the new row's bytes always finds its
				// born stamp when it takes the read lock to check.
				t.vers.mu.Lock()
				rid, err = t.file.Insert(st[i].rec)
				if err == nil {
					t.vers.set(rid, versionMeta{born: cfg.stamp})
				}
				t.vers.mu.Unlock()
			} else {
				rid, err = t.file.Insert(st[i].rec)
			}
			if err == nil {
				st[i].newRID = rid
				t.rows.Add(1)
				wb.put(rid, rid, st[i].rec)
				for _, ix := range t.indexes {
					if err = ix.insertEntry(op.row, rid, wb); err != nil {
						err = fmt.Errorf("core: maintaining index %q: %w", ix.name, err)
						break
					}
				}
			}
		case BatchUpdate:
			var newRID storage.RID
			if newRID, err = t.file.Update(op.rid, st[i].rec); err == nil {
				st[i].newRID = newRID
				moved := newRID != op.rid
				wb.put(op.rid, newRID, st[i].rec)
				for _, ix := range t.indexes {
					if err = ix.updateEntry(st[i].oldRow, op.row, op.rid, newRID, moved, wb); err != nil {
						err = fmt.Errorf("core: maintaining index %q: %w", ix.name, err)
						break
					}
				}
			}
		case BatchDelete:
			// Delete order is index-first (unlike the historical one-row
			// path): a concurrent index reader can then never hold an
			// entry whose heap row is already gone.
			for _, ix := range t.indexes {
				if err = ix.deleteEntry(st[i].oldRow, op.rid, wb); err != nil {
					err = fmt.Errorf("core: maintaining index %q: %w", ix.name, err)
					break
				}
			}
			if err == nil {
				if err = t.file.Delete(op.rid); err == nil {
					t.rows.Add(-1)
					wb.del(op.rid)
				}
			}
		}
		if err != nil {
			if cfg.isolate {
				res.failOp(i, err)
				continue
			}
			res.fail(i, err)
			return
		}
		if res.RIDs != nil {
			res.RIDs[i] = st[i].newRID
		}
		res.Applied++
	}
}

// runEntries is the per-index accumulation of one grouped stage: run
// entries plus each entry's originating batch position (for error and
// duplicate attribution after the key sort).
type runEntries struct {
	entries []btree.RunEntry
	opIdx   []int
}

func (r *runEntries) add(key []byte, value uint64, op btree.RunOp, opIdx int) {
	r.entries = append(r.entries, btree.RunEntry{Key: key, Value: value, Op: op})
	r.opIdx = append(r.opIdx, opIdx)
}

func (r *runEntries) sort() {
	sort.Sort(r)
}

func (r *runEntries) Len() int { return len(r.entries) }
func (r *runEntries) Less(i, j int) bool {
	return bytes.Compare(r.entries[i].Key, r.entries[j].Key) < 0
}
func (r *runEntries) Swap(i, j int) {
	r.entries[i], r.entries[j] = r.entries[j], r.entries[i]
	r.opIdx[i], r.opIdx[j] = r.opIdx[j], r.opIdx[i]
}

// applyGrouped is the amortized mode; see Apply for the stage order.
// Landed effects log to wb in effect order: stage-2 runs, heap ops,
// stage-4 runs. A run that fails mid-ApplyRun is not logged — its
// partial tree damage falls under the same "later ops may be partially
// indexed" caveat the Result contract already carries.
func (t *Table) applyGrouped(ops []batchOp, st []opState, res *Result, cfg applyConfig, wb *walBatch) {
	if len(ops) == 0 {
		return
	}
	// Stage 2: index deletes for delete ops, one sorted leaf-grouped run
	// per index, then the cache invalidations deleteEntry would do.
	var dels runEntries
	for _, ix := range t.indexes {
		dels.entries, dels.opIdx = dels.entries[:0], dels.opIdx[:0]
		for i := range ops {
			if ops[i].kind != BatchDelete || st[i].skip {
				continue
			}
			key, err := ix.entryKey(st[i].oldRow, ops[i].rid)
			if err != nil {
				if cfg.isolate {
					res.failOp(i, err)
					st[i].skip = true
					continue
				}
				res.fail(i, err)
				return
			}
			dels.add(key, 0, btree.RunDelete, i)
		}
		if dels.Len() == 0 {
			continue
		}
		dels.sort()
		if _, err := ix.tree.ApplyRun(dels.entries); err != nil {
			err = fmt.Errorf("core: maintaining index %q: %w", ix.name, err)
			if cfg.isolate {
				res.failRemaining(err)
			}
			res.fail(-1, err)
			return
		}
		wb.idx(ix.name, dels.entries...)
		if ix.cache != nil {
			for _, e := range dels.entries {
				ix.cache.NotifyUpdate(e.Key)
			}
		}
	}

	// Stage 3: heap. Deletes and updates are per-RID; inserts run
	// through the sharded heap in shard-affine runs.
	var (
		insRecs [][]byte
		insOps  []int
	)
	// RIDs are published into the result the moment each heap op lands,
	// not at the end: a later stage failing must not hide where the
	// already-durable ops put their rows (the hot/cold partition's
	// forwarding updates depend on relocated RIDs being reported even
	// for a batch that then errors).
	for i := range ops {
		if st[i].skip {
			continue
		}
		op := &ops[i]
		switch op.kind {
		case BatchDelete:
			if err := t.file.Delete(op.rid); err != nil {
				if cfg.isolate {
					res.failOp(i, err)
					st[i].skip = true
					continue
				}
				res.fail(i, err)
				return
			}
			t.rows.Add(-1)
			wb.del(op.rid)
		case BatchUpdate:
			newRID, err := t.file.Update(op.rid, st[i].rec)
			if err != nil {
				if cfg.isolate {
					res.failOp(i, err)
					st[i].skip = true
					continue
				}
				res.fail(i, err)
				return
			}
			st[i].newRID = newRID
			wb.put(op.rid, newRID, st[i].rec)
			if res.RIDs != nil {
				res.RIDs[i] = newRID
			}
		case BatchInsert:
			insRecs = append(insRecs, st[i].rec)
			insOps = append(insOps, i)
		}
	}
	if len(insRecs) > 0 {
		rids := make([]storage.RID, len(insRecs))
		if cfg.stamp != 0 {
			t.vers.mu.Lock()
		}
		placed, err := t.file.InsertRunFill(insRecs, rids, cfg.fill)
		if cfg.stamp != 0 {
			// Same exclusive insert+meta section as the sync path, run-wide.
			for k := 0; k < placed; k++ {
				t.vers.set(rids[k], versionMeta{born: cfg.stamp})
			}
			t.vers.mu.Unlock()
		}
		for k := 0; k < placed; k++ {
			st[insOps[k]].newRID = rids[k]
			wb.put(rids[k], rids[k], insRecs[k])
			if res.RIDs != nil {
				res.RIDs[insOps[k]] = rids[k]
			}
		}
		t.rows.Add(int64(placed))
		if err != nil {
			if !cfg.isolate {
				res.fail(insOps[placed], err)
				return
			}
			// The rows that did place still get their index entries; the
			// rest fail as a group (the run stops at the first bad spot,
			// so "placed and after" is exact attribution here).
			for _, oi := range insOps[placed:] {
				res.failOp(oi, err)
				st[oi].skip = true
			}
		}
	}

	// Stage 4: index upserts — insert entries, plus update key moves and
	// RID relocations — one sorted leaf-grouped run per index, then the
	// cache invalidations updateEntry would do.
	var ups runEntries
	for _, ix := range t.indexes {
		ups.entries, ups.opIdx = ups.entries[:0], ups.opIdx[:0]
		for i := range ops {
			if st[i].skip {
				continue
			}
			op := &ops[i]
			switch op.kind {
			case BatchInsert:
				key, err := ix.entryKey(op.row, st[i].newRID)
				if err != nil {
					if cfg.isolate {
						res.failOp(i, err)
						st[i].skip = true
						continue
					}
					res.fail(i, err)
					return
				}
				// Inserts on a unique index go in as if-absent so a
				// duplicate is detected via Existed without clobbering
				// the survivor's entry.
				insOp := btree.RunUpsert
				if ix.unique {
					insOp = btree.RunInsertIfAbsent
				}
				ups.add(key, st[i].newRID.Pack(), insOp, i)
			case BatchUpdate:
				oldKey, err := ix.entryKey(st[i].oldRow, op.rid)
				if err == nil {
					var newKey []byte
					if newKey, err = ix.entryKey(op.row, st[i].newRID); err == nil {
						t.stageUpdateEntries(&ups, ix, op, st, i, oldKey, newKey)
						continue
					}
				}
				if cfg.isolate {
					res.failOp(i, err)
					st[i].skip = true
					continue
				}
				res.fail(i, err)
				return
			}
		}
		if ups.Len() == 0 {
			continue
		}
		ups.sort()
		if _, err := ix.tree.ApplyRun(ups.entries); err != nil {
			err = fmt.Errorf("core: maintaining index %q: %w", ix.name, err)
			if cfg.isolate {
				res.failRemaining(err)
			}
			res.fail(-1, err)
			return
		}
		// Unique-index duplicate detection, with exact attribution: an
		// if-absent insert entry whose key already existed is the batch
		// counterpart of insertEntry's duplicate-key error. The
		// survivor's entry is untouched (the duplicate's heap row is
		// orphaned, invisible to every index). The WAL logs only the
		// entries that actually wrote — a collided if-absent entry is a
		// no-op and must not replay as an upsert. Under isolation the
		// duplicate fails alone and is kept out of any remaining
		// indexes' runs.
		logged := ups.entries
		collided := false
		if ix.unique {
			for k := range ups.entries {
				e := &ups.entries[k]
				if e.Op == btree.RunInsertIfAbsent && e.Existed && ops[ups.opIdx[k]].kind == BatchInsert {
					collided = true
					err := fmt.Errorf("core: index %q: duplicate key", ix.name)
					if cfg.isolate {
						res.failOp(ups.opIdx[k], err)
						st[ups.opIdx[k]].skip = true
						continue
					}
					res.fail(ups.opIdx[k], err)
					// Fail the batch, but still log the entries that
					// landed before returning.
				}
			}
			if collided {
				logged = make([]btree.RunEntry, 0, len(ups.entries))
				for _, e := range ups.entries {
					if e.Op == btree.RunInsertIfAbsent && e.Existed {
						continue
					}
					logged = append(logged, e)
				}
			}
		}
		wb.idx(ix.name, logged...)
		if collided && !cfg.isolate {
			return
		}
	}

	if cfg.isolate {
		for i := range ops {
			if res.OpErrs[i] == nil {
				res.Applied++
			}
		}
		return
	}
	res.Applied = len(ops)
}

// stageUpdateEntries queues one update op's stage-4 index work: a
// delete+upsert pair on a key change, an upsert on a bare RID move,
// and the cache invalidations updateEntry would do.
func (t *Table) stageUpdateEntries(ups *runEntries, ix *Index, op *batchOp, st []opState, i int, oldKey, newKey []byte) {
	moved := st[i].newRID != op.rid
	keyChanged := !bytes.Equal(oldKey, newKey)
	if keyChanged {
		ups.add(oldKey, 0, btree.RunDelete, i)
		ups.add(newKey, st[i].newRID.Pack(), btree.RunUpsert, i)
	} else if moved {
		ups.add(newKey, st[i].newRID.Pack(), btree.RunUpsert, i)
	}
	if ix.cache != nil && (moved || keyChanged || ix.cachedFieldsChanged(st[i].oldRow, op.row)) {
		ix.cache.NotifyUpdate(oldKey)
		if keyChanged {
			ix.cache.NotifyUpdate(newKey)
		}
	}
}
