package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// The manifest is the engine's durable catalog: one small JSON file
// naming every table and index, their configuration, and where their
// pages live. It is rewritten atomically (tmp + rename) at every
// checkpoint and describes the on-disk state as of CheckpointLSN —
// recovery rebuilds the catalog from it and replays the WAL suffix on
// top.
const (
	manifestMagic   = "nblb-manifest"
	manifestVersion = 1
)

type manifest struct {
	Magic         string `json:"magic"`
	Version       int    `json:"version"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	NumPages      uint64 `json:"num_pages"`
	// Clock is the engine's last committed transaction timestamp as of
	// the checkpoint. Recovery restores it (and advances it past any
	// replayed recTxn records) so timestamps never repeat across a crash.
	Clock  uint64          `json:"clock,omitempty"`
	Tables []manifestTable `json:"tables"`
}

type manifestTable struct {
	Name             string          `json:"name"`
	Fields           []manifestField `json:"fields"`
	Rows             int64           `json:"rows"`
	AppendOnly       bool            `json:"append_only,omitempty"`
	HeapFillFactor   float64         `json:"heap_fill_factor,omitempty"`
	HeapInsertShards int             `json:"heap_insert_shards"`
	HeapPages        []uint64        `json:"heap_pages"`
	Indexes          []manifestIndex `json:"indexes,omitempty"`
	// Versions are the table's MVCC metas still live at checkpoint time
	// (a checkpoint can land while dead versions await GC or while a
	// snapshot pins history). Recovery reloads them, then a full GC pass
	// at watermark=clock flattens whatever no reader can see — no
	// snapshot survives a crash.
	Versions []manifestVer `json:"versions,omitempty"`
}

// manifestVer is one persisted versionMeta (RID packed).
type manifestVer struct {
	RID  uint64 `json:"rid"`
	Born uint64 `json:"born,omitempty"`
	Dead uint64 `json:"dead,omitempty"`
	Prev uint64 `json:"prev,omitempty"`
}

type manifestField struct {
	Name string `json:"name"`
	Kind uint8  `json:"kind"`
	Size int    `json:"size,omitempty"`
}

type manifestIndex struct {
	Name         string   `json:"name"`
	KeyFields    []string `json:"key_fields"`
	NonUnique    bool     `json:"non_unique,omitempty"`
	CachedFields []string `json:"cached_fields,omitempty"`
	BucketN      int      `json:"bucket_n"`
	PredLogLimit int      `json:"pred_log_limit"`
	CacheSeed    int64    `json:"cache_seed"`
	FillFactor   float64  `json:"fill_factor"`
	Root         uint64   `json:"root"`
	Height       int      `json:"height"`
	NumKeys      int64    `json:"num_keys"`
	CacheCSN     uint32   `json:"cache_csn"`
}

// writeManifestAtomic persists m at path with the classic tmp + fsync +
// rename + directory-fsync dance, so a crash leaves either the old
// manifest or the new one, never a torn mix.
func writeManifestAtomic(path string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode manifest: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDirBestEffort(filepath.Dir(path))
}

// loadManifest reads and validates the manifest at path. A missing file
// returns (nil, nil): a fresh database, not an error.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: parse manifest %s: %w", path, err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("core: %s is not a manifest (magic %q)", path, m.Magic)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("core: manifest %s has unsupported version %d", path, m.Version)
	}
	return &m, nil
}

func syncDirBestEffort(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // platform may not support directory opens
	}
	defer d.Close()
	d.Sync() // best-effort: some filesystems reject directory fsync
	return nil
}

// Double-write checkpoint file.
//
// A checkpoint flushes dirty pages in place, which is not atomic: a
// crash mid-flush leaves the database a mix of old and new page images,
// and the WAL suffix needed to repair the old ones may already overlap
// what was flushed. The double-write file makes the checkpoint itself
// atomic. Before any in-place flush, every dirty page image plus the
// new manifest is streamed into <path>.dw and fsynced — that fsync is
// the checkpoint's commit point. Recovery finding a complete dw file
// re-applies its images (idempotent) and installs its manifest; finding
// a torn one discards it, and the no-steal buffer policy guarantees the
// main file still holds exactly the previous checkpoint's images.
//
// Layout: [8B magic][u32 manifestLen][manifest JSON]
//
//	[u32 nPages] then per page [u64 id][pageSize bytes][u32 crc]
//	[8B trailer magic]
var (
	dwMagic        = [8]byte{'n', 'b', 'l', 'b', '-', 'd', 'w', '1'}
	dwTrailerMagic = [8]byte{'n', 'b', 'l', 'b', '-', 'e', 'n', 'd'}
)

var dwCRCTable = crc32.MakeTable(crc32.Castagnoli)

// dwWriter streams a double-write file.
type dwWriter struct {
	f      *os.File
	path   string
	npos   int64 // offset of the page-count placeholder
	npages uint32
}

func newDWWriter(path string, m *manifest) (*dwWriter, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("core: encode dw manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &dwWriter{f: f, path: path}
	var hdr [12]byte
	copy(hdr[:8], dwMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	if _, err := f.Write(hdr[:]); err != nil {
		return nil, w.abort(err)
	}
	if _, err := f.Write(data); err != nil {
		return nil, w.abort(err)
	}
	w.npos = int64(len(hdr) + len(data))
	if _, err := f.Write([]byte{0, 0, 0, 0}); err != nil { // nPages placeholder
		return nil, w.abort(err)
	}
	return w, nil
}

func (w *dwWriter) abort(err error) error {
	w.f.Close()
	os.Remove(w.path)
	return err
}

func (w *dwWriter) addPage(id storage.PageID, data []byte) error {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], uint64(id))
	if _, err := w.f.Write(idb[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(data, dwCRCTable))
	_, err := w.f.Write(crcb[:])
	w.npages++
	return err
}

// commit back-fills the page count, writes the trailer, and fsyncs.
// After commit returns nil the checkpoint is durable.
func (w *dwWriter) commit() error {
	if _, err := w.f.Write(dwTrailerMagic[:]); err != nil {
		return w.abort(err)
	}
	var nb [4]byte
	binary.LittleEndian.PutUint32(nb[:], w.npages)
	if _, err := w.f.WriteAt(nb[:], w.npos); err != nil {
		return w.abort(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.abort(err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.path)
		return err
	}
	return syncDirBestEffort(filepath.Dir(w.path))
}

type dwPage struct {
	id   storage.PageID
	data []byte
}

// readDW parses the double-write file at path. ok is false for a
// missing, torn, or corrupt file — recovery then falls back to the
// previous checkpoint's on-disk state.
func readDW(path string, pageSize int) (m *manifest, pages []dwPage, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false
	}
	defer f.Close()
	r := io.Reader(f)
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil || [8]byte(hdr[:8]) != dwMagic {
		return nil, nil, false
	}
	mlen := binary.LittleEndian.Uint32(hdr[8:])
	if mlen > 64<<20 {
		return nil, nil, false
	}
	mdata := make([]byte, mlen)
	if _, err := io.ReadFull(r, mdata); err != nil {
		return nil, nil, false
	}
	var mf manifest
	if err := json.Unmarshal(mdata, &mf); err != nil || mf.Magic != manifestMagic {
		return nil, nil, false
	}
	var nb [4]byte
	if _, err := io.ReadFull(r, nb[:]); err != nil {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(nb[:])
	if n > 1<<24 {
		return nil, nil, false
	}
	pages = make([]dwPage, 0, n)
	for i := uint32(0); i < n; i++ {
		var idb [8]byte
		if _, err := io.ReadFull(r, idb[:]); err != nil {
			return nil, nil, false
		}
		data := make([]byte, pageSize)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, nil, false
		}
		var crcb [4]byte
		if _, err := io.ReadFull(r, crcb[:]); err != nil {
			return nil, nil, false
		}
		if crc32.Checksum(data, dwCRCTable) != binary.LittleEndian.Uint32(crcb[:]) {
			return nil, nil, false
		}
		pages = append(pages, dwPage{id: storage.PageID(binary.LittleEndian.Uint64(idb[:])), data: data})
	}
	var trailer [8]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil || trailer != dwTrailerMagic {
		return nil, nil, false
	}
	return &mf, pages, true
}
