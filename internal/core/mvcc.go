package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// MVCC over the existing write pipeline — "no bits left behind" applied
// to time: superseded row versions keep living in the heap pages and
// index leaves they already occupy until no snapshot can read them,
// then the garbage collector hands their bytes back to the free-space
// maps.
//
// The design in one paragraph: commit timestamps come from a per-engine
// clock stamped under txnMu at WAL group-commit time. Updates are
// out-of-place — the new version is a fresh heap record, and the OLD
// record's forwarding hop (the hot/cold relocation machinery) is reused
// as the "older version" pointer, stored in versionMeta.prev. A row
// with no versionMeta is visible to every snapshot: that is the
// pre-transactional state, so engines that never call Begin pay one
// atomic load per visibility check and nothing else. Snapshot cursors
// read as-of their start timestamp with NO validation against in-flight
// writers: a version is visible iff born ≤ snap < dead, and both fields
// are immutable once the committing writer publishes the clock.
//
// Visibility has two shapes, matching the two ways readers reach a RID:
//
//   - ridVisible: the reader already holds a concrete RID (heap scans,
//     non-unique index entries, parallel segment workers). Each version
//     is its own RID and will be visited directly, so no chain is ever
//     walked — walking one would double-serve.
//   - resolveVisible: the reader holds a unique-index entry, which
//     always points at the NEWEST version under that key. Older
//     versions are reached by hopping prev pointers until one is inside
//     the snapshot. The chain is per-KEY: when a key is deleted and
//     re-inserted, the new version's prev points at the old key
//     holder, so time travel across key reuse stays correct.
//
// GC: watermark = min(active snapshot startTS), else the clock. A
// version with dead ≤ watermark is invisible to every live and future
// snapshot (future snaps start ≥ clock ≥ watermark), so it is removed
// physically — heap row first (freed space returns to the per-shard
// free-space maps), then its index entries, then its meta. That order
// makes the prune safe against concurrent readers: while the row still
// exists its meta exists, so no reader can resolve it as visible; after
// the row is gone a stale resolve hits storage.ErrDeleted and skips.
// Chain hops never reach a GC'd version while its meta is required:
// a hop from version N to N.prev only happens when N.born > snap, and
// N.prev.dead == N.born > snap ≥ watermark, so N.prev is not yet
// collectible.

// versionMeta is the MVCC fate of one heap record. born/dead are commit
// timestamps (0 = none); prev is the packed RID of the version this one
// superseded (0 = none).
type versionMeta struct {
	born uint64
	dead uint64
	prev uint64
}

// versionStore holds a table's version metadata. any is a monotone
// fast-path flag: once a transaction has ever touched the table,
// visibility checks must consult the map; before that they are free.
type versionStore struct {
	mu  sync.RWMutex // nblb:lock version-store
	m   map[storage.RID]versionMeta
	any atomic.Bool
}

// set installs meta for rid (caller holds mu exclusively).
func (vs *versionStore) set(rid storage.RID, m versionMeta) {
	if vs.m == nil {
		vs.m = make(map[storage.RID]versionMeta)
	}
	vs.m[rid] = m
	vs.any.Store(true)
}

// markDead stamps rid dead at ts, preserving born/prev (caller holds mu
// exclusively). Absent metas get a zero born — "existed forever".
func (vs *versionStore) markDead(rid storage.RID, ts uint64) {
	m := vs.m[rid]
	m.dead = ts
	vs.set(rid, m)
}

// tombstone marks rid's meta as physically collected, keeping born/dead
// so in-flight scanners still judge the version dead (see tombstonePrev).
func (vs *versionStore) tombstone(rid storage.RID) {
	vs.mu.Lock()
	m := vs.m[rid]
	m.prev = tombstonePrev
	vs.m[rid] = m
	vs.mu.Unlock()
}

// sweepTombstones drops collected-version tombstones outright. ONLY
// safe when no scan can be in flight (recovery, before the engine is
// shared); at runtime tombstones die by RID reuse instead.
func (vs *versionStore) sweepTombstones() {
	vs.mu.Lock()
	for rid, m := range vs.m {
		if m.prev == tombstonePrev {
			delete(vs.m, rid)
		}
	}
	vs.mu.Unlock()
}

// snapLatest is the sentinel snapshot timestamp meaning "read latest
// committed state" — every born passes, only live versions are served.
const snapLatest = ^uint64(0)

// tombstonePrev marks a meta whose heap row GC already removed. The
// meta itself must outlive the row: a heap scan copies record bytes
// BEFORE consulting the version store, so deleting the meta with the
// row opens a window where the scan would see "no meta = visible to
// all" and serve the collected version. The retained born/dead keep it
// invisible to every snapshot instead. A tombstone dies when its RID is
// reused (the insert's set() clobbers it — safe, because reuse requires
// the commitGate GC held while clearing every chain pointer to the
// slot) and is skipped by GC candidate scans and checkpoint manifests.
const tombstonePrev = ^uint64(0)

// testInvertVisibility deliberately inverts the born/snap comparison —
// a sabotaged engine for proving the model-checking harness detects
// visibility bugs. Only tests flip it (TestingSetInvertVisibility).
var testInvertVisibility atomic.Bool

// TestingSetInvertVisibility breaks (or restores) snapshot visibility.
// Test support only.
func TestingSetInvertVisibility(v bool) { testInvertVisibility.Store(v) }

// bornVisible is the "version born in time for this snapshot" half of
// the visibility rule, factored so the sabotage knob has one seam.
func bornVisible(born, snap uint64) bool {
	if testInvertVisibility.Load() {
		return born > snap // intentionally wrong: future versions visible, past hidden
	}
	return born <= snap
}

// ridVisible reports whether the version at rid is visible at snap.
// snap == snapLatest is the non-transactional read path: only the
// liveness (dead == 0) check applies. This is the per-RID shape: no
// chain walk (see the package comment).
func (t *Table) ridVisible(rid storage.RID, snap uint64) bool {
	vs := &t.vers
	if !vs.any.Load() {
		return true
	}
	vs.mu.RLock()
	m, ok := vs.m[rid]
	vs.mu.RUnlock()
	if !ok {
		return true
	}
	return bornVisible(m.born, snap) && (m.dead == 0 || m.dead > snap)
}

// resolveVisible resolves a unique-index entry's RID to the version
// visible at snap, walking the prev chain for snapshots that predate
// the newest version. Returns false when no version under the key is
// visible at snap.
func (t *Table) resolveVisible(rid storage.RID, snap uint64) (storage.RID, bool) {
	vs := &t.vers
	if !vs.any.Load() {
		return rid, true
	}
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	for {
		m, ok := vs.m[rid]
		if !ok {
			// No meta: pre-transactional row, or a version whose meta was
			// already pruned (then the heap row is gone too and the fetch
			// will skip it via ErrDeleted).
			return rid, true
		}
		if bornVisible(m.born, snap) {
			if m.dead == 0 || m.dead > snap {
				return rid, true
			}
			// Dead before snap; anything older died even earlier.
			return storage.InvalidRID, false
		}
		if m.prev == 0 || m.prev == tombstonePrev {
			return storage.InvalidRID, false
		}
		rid = storage.UnpackRID(m.prev)
	}
}

// Clock returns the engine's last committed transaction timestamp.
func (e *Engine) Clock() uint64 { return e.clock.Load() }

// rawStampTS allocates a commit timestamp for a raw (non-transactional)
// Apply when any snapshot is pinned, so the batch's inserts can be
// stamped born-at-ts and stay invisible to the snapshots that predate
// them — the write coalescer folds many connections' inserts into raw
// batches, and an open snapshot cursor must not see the ones that
// landed after it began. With no snapshot open it returns 0 and the raw
// path stays meta-free: absent meta means visible-to-all, which is
// exactly right when every live and future snapshot starts at or after
// the current clock.
func (e *Engine) rawStampTS() uint64 {
	e.snapMu.Lock()
	active := len(e.snaps) > 0
	e.snapMu.Unlock()
	if !active {
		return 0
	}
	e.txnMu.Lock()
	ts := e.clock.Load() + 1
	e.clock.Store(ts)
	e.txnMu.Unlock()
	return ts
}

// registerSnapshot records a live snapshot at the current clock and
// returns its timestamp. Taken under snapMu so the GC watermark (also
// computed under snapMu) can never miss it.
func (e *Engine) registerSnapshot() uint64 {
	e.snapMu.Lock()
	ts := e.clock.Load()
	if e.snaps == nil {
		e.snaps = make(map[uint64]int)
	}
	e.snaps[ts]++
	e.snapMu.Unlock()
	return ts
}

// releaseSnapshot drops one reference to the snapshot at ts.
func (e *Engine) releaseSnapshot(ts uint64) {
	e.snapMu.Lock()
	if n := e.snaps[ts]; n <= 1 {
		delete(e.snaps, ts)
	} else {
		e.snaps[ts] = n - 1
	}
	e.snapMu.Unlock()
}

// gcWatermark is the oldest timestamp any live snapshot reads at; with
// no snapshots open it is the clock itself. Versions dead at or before
// the watermark are invisible to every live and future reader.
func (e *Engine) gcWatermark() uint64 {
	e.snapMu.Lock()
	w := e.clock.Load()
	for ts := range e.snaps {
		if ts < w {
			w = ts
		}
	}
	e.snapMu.Unlock()
	return w
}

// gcDeadThreshold is the dead-version backlog at which a commit or
// snapshot release triggers a GC pass opportunistically.
const gcDeadThreshold = 256

// maybeGC runs a GC pass when the dead-version backlog crosses the
// threshold. Called after commits and snapshot releases.
func (e *Engine) maybeGC() {
	if e.deadVersions.Load() >= gcDeadThreshold {
		e.RunGC()
	}
}

// RunGC runs one garbage-collection pass: every version dead at or
// before the current watermark is unlinked — heap row deleted (space
// returns to the free-space maps), index entries removed, meta pruned —
// and metas of watermark-old live versions with no chain are dropped so
// the map tracks only rows whose fate is still in question. It returns
// the number of versions physically removed.
//
// The pass holds commitGate exclusively: no Apply, txn commit, or
// checkpoint runs concurrently, so tree and heap mutations here cannot
// race entry upserts (readers still run — the removal order documented
// above keeps them consistent). GC is deliberately not WAL-logged: a
// transaction's WAL record already encodes its post-GC state, and
// checkpoint manifests persist whatever metas remain, so recovery
// re-derives any cleanup a crash interrupted.
func (e *Engine) RunGC() int {
	watermark := e.gcWatermark()
	e.commitGate.Lock()
	defer e.commitGate.Unlock()

	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	removed := 0
	for _, t := range tables {
		removed += t.gcLocked(watermark)
	}
	e.deadVersions.Add(int64(-removed))
	return removed
}

// gcLocked collects the table's dead-at-watermark versions. Caller
// holds the engine's commitGate exclusively.
func (t *Table) gcLocked(watermark uint64) int {
	vs := &t.vers
	if !vs.any.Load() {
		return 0
	}
	type candidate struct {
		rid  storage.RID
		dead bool
	}
	vs.mu.RLock()
	cands := make([]candidate, 0, len(vs.m))
	for rid, m := range vs.m {
		if m.prev == tombstonePrev {
			continue // already collected; dies on RID reuse
		}
		switch {
		case m.dead != 0 && m.dead <= watermark:
			cands = append(cands, candidate{rid, true})
		case m.dead == 0 && m.born <= watermark:
			// Live and visible to everyone forever: meta is pure overhead.
			// (Deleting it is safe even against a scanner mid-step: absent
			// meta means visible-to-all, which is exactly this row's fate.)
			cands = append(cands, candidate{rid, false})
		}
	}
	vs.mu.RUnlock()

	removed := 0
	gone := make(map[uint64]struct{})
	var row tuple.Row
	for _, c := range cands {
		if !c.dead {
			vs.mu.Lock()
			delete(vs.m, c.rid)
			vs.mu.Unlock()
			continue
		}
		// Physical removal order: heap row, then index entries, then
		// meta (see the package comment for why this order is safe
		// against concurrent snapshot readers).
		rec, err := t.file.Get(c.rid)
		if err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				// Row already gone (a crash between checkpointed pages and
				// the manifest can leave a meta for a removed row).
				vs.tombstone(c.rid)
				gone[c.rid.Pack()] = struct{}{}
				removed++
			}
			continue
		}
		var derr error
		row, _, derr = tuple.DecodeInto(row[:0], t.schema, rec)
		if derr != nil {
			continue
		}
		if err := t.file.Delete(c.rid); err != nil {
			continue
		}
		// Crash-matrix point: heap row gone, index entries still present,
		// nothing WAL-logged. A SIGKILL here must recover cleanly (GC is
		// redone from the manifest metas at the next recovery).
		wal.TestPoint("gc:unlinked")
		t.mu.RLock()
		for _, ix := range t.indexes {
			key, kerr := ix.entryKey(row, c.rid)
			if kerr != nil {
				continue
			}
			if ix.unique {
				// Compare-and-delete: the entry may have been upserted to a
				// newer version of the key; only remove it while it still
				// points at the version being collected.
				if v, found, _ := ix.tree.Search(key); !found || v != c.rid.Pack() {
					continue
				}
			}
			ix.tree.Delete(key)
			if ix.cache != nil {
				ix.cache.NotifyUpdate(key)
			}
		}
		t.mu.RUnlock()
		// The meta is NOT deleted — it becomes a tombstone so scanners
		// that copied the row before file.Delete still see it as dead.
		vs.tombstone(c.rid)
		gone[c.rid.Pack()] = struct{}{}
		removed++
	}
	if len(gone) > 0 {
		// Clear prev pointers left dangling at collected versions. A hop
		// to a collected version could only come from a snapshot older
		// than the watermark — impossible for any live or future reader —
		// so dropping the pointer changes no visible resolution. It is
		// REQUIRED, not just tidy: the collected version's heap slot is
		// about to be reusable, and a later insert landing on the same RID
		// would otherwise splice an unrelated row (or a cycle) into this
		// chain. commitGate is held exclusively here, so every dangling
		// prev is cleared before any insert can reuse the slot.
		vs.mu.Lock()
		for rid, m := range vs.m {
			if _, dangling := gone[m.prev]; dangling {
				m.prev = 0
				vs.m[rid] = m
			}
		}
		vs.mu.Unlock()
	}
	return removed
}
