package core

import (
	"errors"
	"fmt"
	"iter"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Cursor streams rows from a Query. The iteration contract:
//
//	cur, err := tbl.Query(core.WithProjection("id", "karma"))
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//	    use(cur.RID(), cur.Row())
//	}
//	if err := cur.Err(); err != nil { ... }
//
// or, with Go 1.23 range-over-func:
//
//	for rid, row := range cur.All() { ... }
//
// Row returns cursor-owned scratch that is overwritten by the next
// Next: copy (Row.Clone) to retain. On the cache-resident path — an
// index query whose projection is covered by key plus cached fields —
// iteration performs zero heap allocations per row once the scratch
// has grown. Cursors are not safe for concurrent use; the underlying
// table is (writers proceed while a cursor is open).
//
// Pin lifetime: an index cursor holds exactly one buffer-pool pin — on
// its current leaf page — between Next calls, and no latch (the leaf
// latch is taken only inside Next). The pin is released when the
// cursor is exhausted (Next returns false), when Close is called, or
// when an All loop ends, whichever comes first; a cursor abandoned
// mid-scan without Close leaks its pin and eventually starves the
// pool (Pool.PinnedFrames observes this in tests). Heap-order cursors
// hold no pin between calls — each page is snapshotted into cursor
// scratch under its latch and released before Next returns.
type Cursor struct {
	src     rowSource
	rid     storage.RID
	row     tuple.Row
	key     []byte
	limit   int
	served  int
	reverse bool
	stats   QueryStats
	done    bool
	err     error
}

// rowSource is one row-producing strategy behind a Cursor. step
// advances and fills c.rid / c.row / c.key (or sets c.err); close
// releases whatever the source holds (pins, child cursors).
type rowSource interface {
	step(c *Cursor) bool
	close()
}

// QueryStats counts how a cursor's rows were answered — the paper's
// cache-vs-heap hierarchy, observable per scan.
type QueryStats struct {
	// Rows served so far.
	Rows int64
	// CacheHits counts rows assembled from the index cache (no heap
	// page touched).
	CacheHits int64
	// HeapReads counts rows fetched from the heap.
	HeapReads int64
	// LeafFetches counts index leaf pages fetched (index queries).
	LeafFetches int64
}

// Add accumulates o's counters into s.
func (s *QueryStats) Add(o QueryStats) {
	s.Rows += o.Rows
	s.CacheHits += o.CacheHits
	s.HeapReads += o.HeapReads
	s.LeafFetches += o.LeafFetches
}

// Next advances to the next row, returning false at the end of the
// result set or on error (check Err). Exhaustion releases the cursor's
// resources; Close is still safe afterwards.
func (c *Cursor) Next() bool {
	if c.done || c.err != nil {
		return false
	}
	if c.limit > 0 && c.served >= c.limit {
		c.finish()
		return false
	}
	if !c.src.step(c) {
		c.finish()
		return false
	}
	c.served++
	c.stats.Rows++
	return true
}

// Row returns the current row. It aliases cursor scratch: valid until
// the next Next or Close; Clone to retain.
func (c *Cursor) Row() tuple.Row { return c.row }

// RID returns the current row's physical address.
func (c *Cursor) RID() storage.RID { return c.rid }

// Key returns the current encoded index key for index-backed cursors
// (nil for heap-order scans). Like Row it aliases scratch; copy to
// retain. Merging iterators (hot/cold) order on it.
func (c *Cursor) Key() []byte { return c.key }

// Err returns the first error the cursor hit, if any.
func (c *Cursor) Err() error { return c.err }

// Reverse reports whether the cursor iterates in descending order.
// Merging iterators (hot/cold) use it to orient their comparisons.
func (c *Cursor) Reverse() bool { return c.reverse }

// Stats returns the running answer-path counters.
func (c *Cursor) Stats() QueryStats { return c.stats }

// SegmentStats returns per-segment answer-path counters for a parallel
// cursor (nil for serial cursors). The slice is complete — one entry
// per planned segment, summing to the serial scan's totals — once the
// cursor is exhausted or closed; reading it mid-scan returns a
// snapshot of finished work only.
func (c *Cursor) SegmentStats() []QueryStats {
	if p, ok := c.src.(*parallelSource); ok {
		return p.segmentStats()
	}
	return nil
}

// Close releases the cursor's resources (leaf pin included). It is
// idempotent — double Close and Close after exhaustion are no-ops —
// and returns the cursor's first error.
func (c *Cursor) Close() error {
	c.finish()
	return c.err
}

func (c *Cursor) finish() {
	if !c.done {
		c.done = true
		c.src.close()
	}
}

// All adapts the cursor to a range-over-func iterator. The cursor is
// closed when the loop ends — including on early break, return, or
// panic — so the leaf pin cannot outlive the loop; check Err
// afterwards for mid-iteration failures. The yielded row is the same
// cursor scratch Row returns: Clone to retain it beyond the iteration.
func (c *Cursor) All() iter.Seq2[storage.RID, tuple.Row] {
	return func(yield func(storage.RID, tuple.Row) bool) {
		defer c.Close()
		for c.Next() {
			if !yield(c.rid, c.row) {
				return
			}
		}
	}
}

// --- index-order source --------------------------------------------------

// indexSource drives a pinned-frame btree cursor and turns index
// entries into rows: from the index cache when the projection is
// covered and the entry is cached (hit set by the entry visitor wired
// in query()), from the heap otherwise. All scratch is cursor-owned
// and reused per row.
type indexSource struct {
	ix       *Index
	bt       *btree.Cursor
	plan     *projPlan
	fp       *filterPlan
	keyKinds []tuple.Kind
	keyVals  []tuple.Value
	payload  []byte
	hit      bool
	heapRow  tuple.Row
	heapBuf  []byte
	snap     uint64 // read timestamp (snapLatest outside transactions)
}

func (s *indexSource) step(c *Cursor) bool {
	for {
		if !s.bt.Next() {
			c.err = s.bt.Err()
			return false
		}
		c.stats.LeafFetches = s.bt.LeafFetches()
		c.rid = storage.UnpackRID(s.bt.Value())
		c.key = s.bt.Key()
		// MVCC visibility. Unique entries point at the newest version
		// under the key; a pinned snapshot may need an older one, reached
		// through the prev chain. Non-unique entries (and latest reads,
		// where the chain degenerates to a liveness check) are per-RID.
		if s.snap != snapLatest && s.ix.unique {
			vrid, ok := s.ix.table.resolveVisible(c.rid, s.snap)
			if !ok {
				continue
			}
			if vrid != c.rid {
				s.hit = false // cache payload describes the newest version
				c.rid = vrid
			}
		} else if !s.ix.table.ridVisible(c.rid, s.snap) {
			continue
		}
		hit := s.hit
		keyDecoded := false
		if s.fp != nil && len(s.fp.key) > 0 {
			kv, err := tuple.DecodeKeyInto(s.keyVals[:0], s.bt.Key(), s.keyKinds...)
			if err != nil {
				c.err = fmt.Errorf("core: decoding key: %w", err)
				return false
			}
			s.keyVals = kv
			keyDecoded = true
			if !s.fp.passKey(kv) {
				continue // rejected on key bytes: no cache, no heap
			}
		}
		if hit && s.fp != nil && len(s.fp.cached) > 0 {
			pass, ok := s.fp.passCached(s.ix, s.payload)
			if ok && !pass {
				continue // rejected on the cached payload: no heap
			}
			if !ok {
				hit = false // payload unusable; heap path re-evaluates
			}
		}
		if hit && (s.fp == nil || !s.fp.needsHeap) {
			if !keyDecoded {
				if kv, err := tuple.DecodeKeyInto(s.keyVals[:0], s.bt.Key(), s.keyKinds...); err == nil {
					s.keyVals = kv
					keyDecoded = true
				}
			}
			if keyDecoded {
				if row, ok := s.ix.assembleInto(c.row, s.keyVals, s.payload, s.plan); ok {
					c.row = row
					c.stats.CacheHits++
					return true
				}
			}
		}
		rec, err := s.ix.table.file.GetInto(s.heapBuf[:0], c.rid)
		if err != nil {
			if errors.Is(err, storage.ErrDeleted) {
				// The row vanished between reading its index entry and the
				// heap fetch — a racing delete committed in between. Skip
				// it: scans have no snapshot; the row is simply gone.
				continue
			}
			c.err = fmt.Errorf("core: fetching %v: %w", c.rid, err)
			return false
		}
		s.heapBuf = rec[:0]
		row, _, err := tuple.DecodeInto(s.heapRow, s.ix.table.schema, rec)
		if err != nil {
			c.err = fmt.Errorf("core: decoding %v: %w", c.rid, err)
			return false
		}
		s.heapRow = row
		c.stats.HeapReads++
		if s.fp != nil && !s.fp.passRow(row) {
			continue
		}
		c.row = projectRowInto(c.row, row, s.plan.idx)
		return true
	}
}

func (s *indexSource) close() { s.bt.Close() }

// --- heap-order source ---------------------------------------------------

// heapSource streams rows in heap order. It snapshots one page at a
// time under the page latch — record bytes are copied into a reused
// buffer, so no latch or pin is held while caller code runs — then
// decodes lazily per Next into reused scratch. Pages appended after
// the query opened are not visited.
type heapSource struct {
	t       *Table
	pages   []storage.PageID
	reverse bool
	projIdx []int // nil = all fields
	filters []boundFilter
	snap    uint64 // read timestamp (snapLatest outside transactions)

	pi     int // next index into pages to load
	recBuf []byte
	offs   []int // prefix offsets into recBuf; record i = recBuf[offs[i]:offs[i+1]]
	rids   []storage.RID
	i      int // next record to serve within the snapshot
	loaded bool
	decRow tuple.Row
}

func (s *heapSource) step(c *Cursor) bool {
	for {
		if !s.loaded || s.i < 0 || s.i >= len(s.rids) {
			if !s.loadNextPage(c) {
				return false
			}
			continue
		}
		rec := s.recBuf[s.offs[s.i]:s.offs[s.i+1]]
		c.rid = s.rids[s.i]
		if s.reverse {
			s.i--
		} else {
			s.i++
		}
		// Every version is its own heap record; serve the ones visible at
		// the read timestamp (for latest reads: the live ones).
		if !s.t.ridVisible(c.rid, s.snap) {
			continue
		}
		row, _, err := tuple.DecodeInto(s.decRow, s.t.schema, rec)
		if err != nil {
			c.err = fmt.Errorf("core: decoding %v: %w", c.rid, err)
			return false
		}
		s.decRow = row
		c.stats.HeapReads++
		if len(s.filters) > 0 && !passBound(row, s.filters) {
			continue
		}
		if s.projIdx == nil {
			c.row = row
		} else {
			c.row = projectRowInto(c.row, row, s.projIdx)
		}
		return true
	}
}

// loadNextPage snapshots the next page (in scan direction) that holds
// live records. Returns false when the file is exhausted or on error.
func (s *heapSource) loadNextPage(c *Cursor) bool {
	for s.pi < len(s.pages) {
		var id storage.PageID
		if s.reverse {
			id = s.pages[len(s.pages)-1-s.pi]
		} else {
			id = s.pages[s.pi]
		}
		s.pi++
		s.recBuf = s.recBuf[:0]
		s.offs = append(s.offs[:0], 0)
		s.rids = s.rids[:0]
		err := s.t.file.VisitPage(id, func(sp *storage.SlottedPage, _ bool) {
			sp.Records(func(slot uint16, rec []byte) bool {
				s.recBuf = append(s.recBuf, rec...)
				s.offs = append(s.offs, len(s.recBuf))
				s.rids = append(s.rids, storage.RID{Page: id, Slot: slot})
				return true
			})
		})
		if err != nil {
			c.err = err
			return false
		}
		if len(s.rids) == 0 {
			continue
		}
		s.loaded = true
		if s.reverse {
			s.i = len(s.rids) - 1
		} else {
			s.i = 0
		}
		return true
	}
	return false
}

func (s *heapSource) close() {}
