package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// lookupScratch bundles the byte buffers a point lookup needs — the
// encoded search key and the cache payload — so the hot path reuses
// them via a sync.Pool instead of allocating per call.
type lookupScratch struct {
	key     []byte
	payload []byte
}

var lookupScratchPool = sync.Pool{New: func() any { return new(lookupScratch) }}

// LookupResult describes how a point lookup was answered — the paper's
// three-tier hierarchy made observable.
type LookupResult struct {
	Found bool
	// CacheHit means the query was answered entirely from the index
	// leaf (key fields + cached fields); no heap page was touched.
	CacheHit bool
	// HeapAccess means the heap page was fetched (through the buffer
	// pool, possibly from disk).
	HeapAccess bool
	// CacheFilled means a miss installed a fresh cache entry.
	CacheFilled bool
	// RID is the matched row's location (valid when Found).
	RID storage.RID
}

// Lookup performs a point query on a unique index, projecting the named
// fields (nil projects the full row).
//
// The flow is the paper's Section 2.1.1 verbatim: descend to the leaf;
// on finding the key, scan the leaf's cache slots for the RID. If the
// cached payload plus the key fields cover the projection, answer
// without touching the heap. Otherwise fetch the heap row while the
// leaf is still pinned and install the missing cache entry (a volatile
// write that never dirties the page).
func (ix *Index) Lookup(project []string, keyVals ...tuple.Value) (tuple.Row, LookupResult, error) {
	return ix.LookupInto(nil, project, keyVals...)
}

// LookupInto is Lookup writing the projected row into dst when its
// capacity suffices (the returned row may still be a fresh slice when
// dst was too small). Together with the pooled key/payload scratch this
// makes a cache-hit lookup allocation-free: callers that reuse the
// returned row across calls pay zero heap allocations per hit.
//
// The returned row aliases dst's backing array; it is only valid until
// the next LookupInto with the same dst.
func (ix *Index) LookupInto(dst tuple.Row, project []string, keyVals ...tuple.Value) (tuple.Row, LookupResult, error) {
	if !ix.unique {
		return nil, LookupResult{}, fmt.Errorf("core: Lookup requires a unique index; use LookupAll on %q", ix.name)
	}
	plan, err := ix.resolveProjection(project)
	if err != nil {
		return nil, LookupResult{}, err
	}
	sc := lookupScratchPool.Get().(*lookupScratch)
	defer lookupScratchPool.Put(sc)
	key, err := ix.searchKeyInto(sc.key[:0], keyVals)
	if err != nil {
		return nil, LookupResult{}, err
	}
	sc.key = key
	var (
		res    LookupResult
		outRow tuple.Row
		visErr error
	)
	err = ix.tree.VisitLeaf(key, func(l *btree.Leaf) {
		outRow, res, visErr = ix.lookupInLeaf(l, key, keyVals, plan, dst, sc)
	})
	if err != nil {
		return nil, LookupResult{}, err
	}
	if visErr != nil {
		return nil, LookupResult{}, visErr
	}
	if !res.Found {
		return nil, res, nil
	}
	return outRow, res, nil
}

// lookupInLeaf answers one point lookup against an already-pinned leaf:
// the Section 2.1.1 flow of Lookup, factored out so LookupMany can run
// it for every key that lands on the same leaf under a single visit.
func (ix *Index) lookupInLeaf(l *btree.Leaf, key []byte, keyVals []tuple.Value, plan *projPlan, dst tuple.Row, sc *lookupScratch) (tuple.Row, LookupResult, error) {
	var res LookupResult
	packed, found := l.Find(key)
	if !found {
		return nil, res, nil
	}
	rid := storage.UnpackRID(packed)
	// A unique entry always points at the newest version of its key;
	// when that version is dead (deleted, entry awaiting GC) the key has
	// no live match.
	if !ix.table.ridVisible(rid, snapLatest) {
		return nil, res, nil
	}
	res.Found = true
	res.RID = rid
	// Only probe the cache when the plan can be answered from it — an
	// uncoverable projection would scan the slots just to throw the
	// payload away.
	prepared := false
	if ix.cache != nil && plan.coverable {
		prepared = ix.cache.Prepare(l)
		if prepared {
			if payload, ok := ix.cache.LookupInto(sc.payload[:0], l, packed); ok {
				sc.payload = payload[:0]
				if row, ok := ix.assembleInto(dst, keyVals, payload, plan); ok {
					res.CacheHit = true
					return row, res, nil
				}
			}
		}
	}
	// Cache miss (or projection not coverable): fetch the heap row
	// while the leaf is pinned, then fill the cache.
	res.HeapAccess = true
	row, gerr := ix.table.Get(res.RID)
	if gerr != nil {
		return nil, res, gerr
	}
	if ix.cache != nil && l.Exclusive() && (prepared || ix.cache.Prepare(l)) {
		if payload, ok := ix.encodePayloadInto(sc.payload[:0], row); ok {
			sc.payload = payload[:0]
			if ix.cache.Insert(l, packed, payload) {
				res.CacheFilled = true
			}
		}
	}
	return projectRowInto(dst, row, plan.idx), res, nil
}

// LookupMany answers a batch of point lookups on a unique index. The
// encoded keys are sorted so every key falling on the same B+Tree leaf
// is answered under one descent and one pin (per-leaf key groups),
// instead of paying a root-to-leaf walk per key. rows and results are
// returned in input order; rows[i] is nil when keys[i] has no match.
func (ix *Index) LookupMany(project []string, keys [][]tuple.Value) ([]tuple.Row, []LookupResult, error) {
	if !ix.unique {
		return nil, nil, fmt.Errorf("core: LookupMany requires a unique index; use LookupAll on %q", ix.name)
	}
	plan, err := ix.resolveProjection(project)
	if err != nil {
		return nil, nil, err
	}
	type searchEntry struct {
		enc []byte
		pos int
	}
	entries := make([]searchEntry, len(keys))
	for i, kv := range keys {
		enc, err := ix.searchKeyInto(nil, kv)
		if err != nil {
			return nil, nil, fmt.Errorf("core: LookupMany key %d: %w", i, err)
		}
		entries[i] = searchEntry{enc: enc, pos: i}
	}
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].enc, entries[j].enc) < 0
	})
	rows := make([]tuple.Row, len(keys))
	results := make([]LookupResult, len(keys))
	sc := lookupScratchPool.Get().(*lookupScratch)
	defer lookupScratchPool.Put(sc)
	i := 0
	for i < len(entries) {
		start := i
		var visErr error
		err := ix.tree.VisitLeaf(entries[i].enc, func(l *btree.Leaf) {
			// The leaf covers every sorted key ≤ its last key: answer
			// them all while the leaf is pinned. Keys beyond it descend
			// again on the next outer iteration.
			var maxKey []byte
			if nk := l.NumKeys(); nk > 0 {
				maxKey = l.KeyAt(nk - 1)
			}
			for ; i < len(entries); i++ {
				e := entries[i]
				if i > start && (maxKey == nil || bytes.Compare(e.enc, maxKey) > 0) {
					return
				}
				row, res, lerr := ix.lookupInLeaf(l, e.enc, keys[e.pos], plan, nil, sc)
				if lerr != nil {
					visErr = lerr
					return
				}
				rows[e.pos] = row
				results[e.pos] = res
			}
		})
		if err != nil {
			return nil, nil, err
		}
		if visErr != nil {
			return nil, nil, visErr
		}
		if i == start {
			i++ // defensive: guarantee progress
		}
	}
	return rows, results, nil
}

// LookupRID returns just the RID for a key, touching neither cache nor
// heap (the plain B+Tree lookup every engine has).
func (ix *Index) LookupRID(keyVals ...tuple.Value) (storage.RID, bool, error) {
	key, err := ix.searchKey(keyVals)
	if err != nil {
		return storage.InvalidRID, false, err
	}
	packed, found, err := ix.tree.Search(key)
	if err != nil || !found {
		return storage.InvalidRID, false, err
	}
	rid := storage.UnpackRID(packed)
	if !ix.table.ridVisible(rid, snapLatest) {
		return storage.InvalidRID, false, nil // newest version deleted, entry awaits GC
	}
	return rid, true, nil
}

// LookupAll returns every row matching the key values on a non-unique
// index (or the single match on a unique one). It is a convenience
// wrapper over Query(WithPrefix(...)) that materializes the result;
// large matches should iterate the cursor instead.
func (ix *Index) LookupAll(keyVals ...tuple.Value) ([]tuple.Row, error) {
	cur, err := ix.Query(WithPrefix(keyVals...))
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var rows []tuple.Row
	for cur.Next() {
		rows = append(rows, cur.Row().Clone())
	}
	return rows, cur.Err()
}

// WarmCache fills every leaf's cache with the rows its keys point at,
// hottest-first ordering being the caller's responsibility. It is the
// bulk version of the lazy fill path, used to set up experiments.
// Returns the number of entries installed.
//
// The bulk path is batched at both ends: per index leaf, the RIDs to
// warm are gathered, sorted by heap page, and fetched through
// heap.File.GetRun — one page pin and latch per distinct heap page
// instead of per row — and all scratch (RID/payload buffers, decoded
// row) is pooled, so warming N entries costs O(1) allocations.
func (ix *Index) WarmCache() (int, error) {
	if ix.cache == nil {
		return 0, fmt.Errorf("core: index %q has no cache", ix.name)
	}
	installed := 0
	sc := lookupScratchPool.Get().(*lookupScratch)
	defer lookupScratchPool.Put(sc)
	var (
		rowBuf tuple.Row
		rids   []storage.RID
		packs  []uint64
		visErr error
	)
	err := ix.tree.VisitAllLeaves(func(l *btree.Leaf) bool {
		if !ix.cache.Prepare(l) {
			return true
		}
		// The budget is the page's slot capacity: *successful* installs
		// beyond it would evict entries installed moments ago, so the
		// fetch run stops once that many landed — but an entry that
		// fails to install (encode declined, slot contention) spends no
		// budget, exactly like the pre-batched warm loop.
		budget := ix.cache.SlotsIn(l)
		if budget <= 0 {
			return true
		}
		rids, packs = rids[:0], packs[:0]
		for i := 0; i < l.NumKeys(); i++ {
			packed := l.ValueAt(i)
			rids = append(rids, storage.UnpackRID(packed))
			packs = append(packs, packed)
		}
		// Heap-page order maximizes GetRun's per-page grouping; install
		// order within one leaf does not matter.
		sort.Sort(&ridsByPage{rids: rids, packs: packs})
		leafInstalled := 0
		gerr := ix.table.file.GetRun(rids, func(i int, rec []byte) bool {
			if leafInstalled >= budget {
				return false
			}
			row, _, derr := tuple.DecodeInto(rowBuf, ix.table.schema, rec)
			if derr != nil {
				visErr = derr
				return false
			}
			rowBuf = row
			payload, ok := ix.encodePayloadInto(sc.payload[:0], row)
			if !ok {
				return true
			}
			sc.payload = payload[:0]
			if ix.cache.Insert(l, packs[i], payload) {
				installed++
				leafInstalled++
			}
			return leafInstalled < budget
		})
		if gerr != nil {
			visErr = gerr
		}
		return visErr == nil
	})
	if err != nil {
		return installed, err
	}
	return installed, visErr
}

// ridsByPage sorts the WarmCache gather by heap page, keeping the
// packed values aligned.
type ridsByPage struct {
	rids  []storage.RID
	packs []uint64
}

func (s *ridsByPage) Len() int { return len(s.rids) }
func (s *ridsByPage) Less(i, j int) bool {
	if s.rids[i].Page != s.rids[j].Page {
		return s.rids[i].Page < s.rids[j].Page
	}
	return s.rids[i].Slot < s.rids[j].Slot
}
func (s *ridsByPage) Swap(i, j int) {
	s.rids[i], s.rids[j] = s.rids[j], s.rids[i]
	s.packs[i], s.packs[j] = s.packs[j], s.packs[i]
}

// resolveProjection maps projected names to schema positions. nil
// projects every field. Resolved plans are cached in an immutable
// copy-on-write slice behind an atomic pointer, so the common case — a
// projection seen before — is a lock-free, allocation-free scan over a
// handful of entries. The returned slice must be treated as read-only.
func (ix *Index) resolveProjection(project []string) (*projPlan, error) {
	if project == nil {
		return ix.projAll, nil
	}
	if plans := ix.projPlans.Load(); plans != nil {
		for i := range *plans {
			p := &(*plans)[i]
			if sameStrings(project, p.names) {
				return p, nil
			}
		}
	}
	idx := make([]int, len(project))
	for i, name := range project {
		pos := ix.table.schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("core: projection field %q not in %s", name, ix.table.schema)
		}
		idx[i] = pos
	}
	plan := ix.buildProjPlan(append([]string(nil), project...), idx)
	for {
		old := ix.projPlans.Load()
		var next []projPlan
		if old != nil {
			// Another goroutine may have published this plan meanwhile.
			for i := range *old {
				p := &(*old)[i]
				if sameStrings(project, p.names) {
					return p, nil
				}
			}
			if len(*old) >= maxProjPlans {
				return &plan, nil // cache full: resolve without caching
			}
			next = make([]projPlan, len(*old)+1)
			copy(next, *old)
			next[len(*old)] = plan
		} else {
			next = []projPlan{plan}
		}
		if ix.projPlans.CompareAndSwap(old, &next) {
			// Return the published copy: it is immutable from here on.
			return &next[len(next)-1], nil
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) || b == nil {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// growRow returns dst resized to n values, reusing its backing array
// when the capacity suffices.
func growRow(dst tuple.Row, n int) tuple.Row {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make(tuple.Row, n)
}

// assembleInto builds the projected row from key values and the cached
// payload by walking the plan's precomputed assembly steps, reusing
// dst's backing array when possible. Cached fields decode directly at
// their precomputed payload offsets — no intermediate slice, no
// per-call coverage discovery.
func (ix *Index) assembleInto(dst tuple.Row, keyVals []tuple.Value, payload []byte, plan *projPlan) (tuple.Row, bool) {
	if !plan.coverable || len(payload) != ix.payloadWidth {
		return nil, false
	}
	row := growRow(dst, len(plan.steps))
	for i, st := range plan.steps {
		if st.fromKey {
			row[i] = keyVals[st.src]
			continue
		}
		v, ok := ix.decodePayloadField(payload, st.src)
		if !ok {
			return nil, false
		}
		row[i] = v
	}
	return row, true
}

// decodePayloadField extracts the ci-th cached field from a payload.
func (ix *Index) decodePayloadField(payload []byte, ci int) (tuple.Value, bool) {
	f := ix.table.schema.Field(ix.cachedFields[ci])
	if payload[0]&(1<<ci) != 0 {
		return tuple.Value{Kind: f.Kind, Null: true}, true
	}
	off := ix.payloadOff[ci]
	v := tuple.Value{Kind: f.Kind}
	switch f.Kind {
	case tuple.KindInt64, tuple.KindTimestamp:
		v.Int = int64(binary.LittleEndian.Uint64(payload[off:]))
	case tuple.KindFloat64:
		v.Float = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
	case tuple.KindInt32:
		v.Int = int64(int32(binary.LittleEndian.Uint32(payload[off:])))
	case tuple.KindInt16:
		v.Int = int64(int16(binary.LittleEndian.Uint16(payload[off:])))
	case tuple.KindInt8:
		v.Int = int64(int8(payload[off]))
	case tuple.KindBool:
		if payload[off] != 0 {
			v.Int = 1
		}
	case tuple.KindChar:
		end := off + fixedValueWidth(f)
		b := payload[off:end]
		for len(b) > 0 && b[len(b)-1] == 0 {
			b = b[:len(b)-1]
		}
		v.Str = string(b)
	default:
		return tuple.Value{}, false
	}
	return v, true
}

// projectRowInto projects row through projIdx, reusing dst's backing
// array when its capacity suffices.
func projectRowInto(dst tuple.Row, row tuple.Row, projIdx []int) tuple.Row {
	out := growRow(dst, len(projIdx))
	for i, pos := range projIdx {
		out[i] = row[pos]
	}
	return out
}

// encodePayloadInto serializes the cached fields of a row into the
// fixed payload layout — one null-bitmap byte, then each field's fixed
// bytes — appending into dst (the hot path
// passes pooled scratch; idxcache.Insert copies the payload into the
// page, so the buffer is immediately reusable).
func (ix *Index) encodePayloadInto(dst []byte, row tuple.Row) ([]byte, bool) {
	var buf []byte
	if cap(dst) >= ix.payloadWidth {
		buf = dst[:ix.payloadWidth]
		for i := range buf {
			buf[i] = 0
		}
	} else {
		buf = make([]byte, ix.payloadWidth)
	}
	off := 1
	for i, pos := range ix.cachedFields {
		v := row[pos]
		f := ix.table.schema.Field(pos)
		w := fixedValueWidth(f)
		if v.Null {
			buf[0] |= 1 << i
			off += w
			continue
		}
		switch f.Kind {
		case tuple.KindInt64, tuple.KindTimestamp:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.Int))
		case tuple.KindFloat64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.Float))
		case tuple.KindInt32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v.Int)))
		case tuple.KindInt16:
			binary.LittleEndian.PutUint16(buf[off:], uint16(int16(v.Int)))
		case tuple.KindInt8:
			buf[off] = byte(int8(v.Int))
		case tuple.KindBool:
			if v.Int != 0 {
				buf[off] = 1
			}
		case tuple.KindChar:
			copy(buf[off:off+w], v.Str)
		default:
			return nil, false
		}
		off += w
	}
	return buf, true
}

// prefixSuccessor returns the smallest byte string greater than every
// string with the given prefix, or nil if none exists (all 0xFF).
func prefixSuccessor(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
