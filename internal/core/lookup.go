package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/btree"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// LookupResult describes how a point lookup was answered — the paper's
// three-tier hierarchy made observable.
type LookupResult struct {
	Found bool
	// CacheHit means the query was answered entirely from the index
	// leaf (key fields + cached fields); no heap page was touched.
	CacheHit bool
	// HeapAccess means the heap page was fetched (through the buffer
	// pool, possibly from disk).
	HeapAccess bool
	// CacheFilled means a miss installed a fresh cache entry.
	CacheFilled bool
	// RID is the matched row's location (valid when Found).
	RID storage.RID
}

// Lookup performs a point query on a unique index, projecting the named
// fields (nil projects the full row).
//
// The flow is the paper's Section 2.1.1 verbatim: descend to the leaf;
// on finding the key, scan the leaf's cache slots for the RID. If the
// cached payload plus the key fields cover the projection, answer
// without touching the heap. Otherwise fetch the heap row while the
// leaf is still pinned and install the missing cache entry (a volatile
// write that never dirties the page).
func (ix *Index) Lookup(project []string, keyVals ...tuple.Value) (tuple.Row, LookupResult, error) {
	if !ix.unique {
		return nil, LookupResult{}, fmt.Errorf("core: Lookup requires a unique index; use LookupAll on %q", ix.name)
	}
	key, err := ix.searchKey(keyVals)
	if err != nil {
		return nil, LookupResult{}, err
	}
	projIdx, err := ix.resolveProjection(project)
	if err != nil {
		return nil, LookupResult{}, err
	}
	var (
		res    LookupResult
		outRow tuple.Row
		visErr error
	)
	err = ix.tree.VisitLeaf(key, func(l *btree.Leaf) {
		packed, found := l.Find(key)
		if !found {
			return
		}
		res.Found = true
		res.RID = storage.UnpackRID(packed)
		if ix.cache != nil && ix.cache.Prepare(l) {
			if payload, ok := ix.cache.Lookup(l, packed); ok {
				if row, ok := ix.assembleFromCache(keyVals, payload, projIdx); ok {
					res.CacheHit = true
					outRow = row
					return
				}
			}
		}
		// Cache miss (or projection not coverable): fetch the heap row
		// while the leaf is pinned, then fill the cache.
		res.HeapAccess = true
		row, gerr := ix.table.Get(res.RID)
		if gerr != nil {
			visErr = gerr
			return
		}
		if ix.cache != nil && l.Exclusive() {
			if payload, ok := ix.encodePayload(row); ok {
				if ix.cache.Insert(l, packed, payload) {
					res.CacheFilled = true
				}
			}
		}
		outRow = projectRow(row, projIdx)
	})
	if err != nil {
		return nil, LookupResult{}, err
	}
	if visErr != nil {
		return nil, LookupResult{}, visErr
	}
	if !res.Found {
		return nil, res, nil
	}
	return outRow, res, nil
}

// LookupRID returns just the RID for a key, touching neither cache nor
// heap (the plain B+Tree lookup every engine has).
func (ix *Index) LookupRID(keyVals ...tuple.Value) (storage.RID, bool, error) {
	key, err := ix.searchKey(keyVals)
	if err != nil {
		return storage.InvalidRID, false, err
	}
	packed, found, err := ix.tree.Search(key)
	if err != nil || !found {
		return storage.InvalidRID, false, err
	}
	return storage.UnpackRID(packed), true, nil
}

// LookupAll returns every row matching the key values on a non-unique
// index (or the single match on a unique one).
func (ix *Index) LookupAll(keyVals ...tuple.Value) ([]tuple.Row, error) {
	prefix, err := ix.searchKey(keyVals)
	if err != nil {
		return nil, err
	}
	end := prefixSuccessor(prefix)
	var rids []storage.RID
	err = ix.tree.Scan(prefix, end, func(k []byte, v uint64) bool {
		rids = append(rids, storage.UnpackRID(v))
		return true
	})
	if err != nil {
		return nil, err
	}
	rows := make([]tuple.Row, 0, len(rids))
	for _, rid := range rids {
		row, err := ix.table.Get(rid)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WarmCache fills every leaf's cache with the rows its keys point at,
// hottest-first ordering being the caller's responsibility. It is the
// bulk version of the lazy fill path, used to set up experiments.
// Returns the number of entries installed.
func (ix *Index) WarmCache() (int, error) {
	if ix.cache == nil {
		return 0, fmt.Errorf("core: index %q has no cache", ix.name)
	}
	installed := 0
	var visErr error
	err := ix.tree.VisitAllLeaves(func(l *btree.Leaf) bool {
		if !ix.cache.Prepare(l) {
			return true
		}
		// Stop at the page's slot capacity: inserting beyond it would
		// evict entries installed moments ago.
		budget := ix.cache.SlotsIn(l)
		for i := 0; i < l.NumKeys() && budget > 0; i++ {
			packed := l.ValueAt(i)
			rid := storage.UnpackRID(packed)
			row, gerr := ix.table.Get(rid)
			if gerr != nil {
				visErr = gerr
				return false
			}
			payload, ok := ix.encodePayload(row)
			if !ok {
				continue
			}
			if ix.cache.Insert(l, packed, payload) {
				installed++
				budget--
			}
		}
		return true
	})
	if err != nil {
		return installed, err
	}
	return installed, visErr
}

// resolveProjection maps projected names to schema positions. nil
// projects every field. Results are memoized (the returned slice must
// be treated as read-only).
func (ix *Index) resolveProjection(project []string) ([]int, error) {
	ix.projMu.Lock()
	defer ix.projMu.Unlock()
	if project == nil {
		if ix.projAll == nil {
			ix.projAll = make([]int, ix.table.schema.NumFields())
			for i := range ix.projAll {
				ix.projAll[i] = i
			}
		}
		return ix.projAll, nil
	}
	if sameStrings(project, ix.projLast) {
		return ix.projIdx, nil
	}
	idx := make([]int, len(project))
	for i, name := range project {
		pos := ix.table.schema.Index(name)
		if pos < 0 {
			return nil, fmt.Errorf("core: projection field %q not in %s", name, ix.table.schema)
		}
		idx[i] = pos
	}
	ix.projLast = append([]string(nil), project...)
	ix.projIdx = idx
	return idx, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) || b == nil {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assembleFromCache builds the projected row from key values and the
// cached payload, if they cover the projection. Cached fields decode
// directly at their precomputed payload offsets — no intermediate
// slice.
func (ix *Index) assembleFromCache(keyVals []tuple.Value, payload []byte, projIdx []int) (tuple.Row, bool) {
	if len(payload) != ix.payloadWidth {
		return nil, false
	}
	row := make(tuple.Row, len(projIdx))
	for i, pos := range projIdx {
		if kv, ok := fieldFromKey(ix.keyFields, keyVals, pos); ok {
			row[i] = kv
			continue
		}
		found := false
		for ci, cpos := range ix.cachedFields {
			if cpos == pos {
				v, ok := ix.decodePayloadField(payload, ci)
				if !ok {
					return nil, false
				}
				row[i] = v
				found = true
				break
			}
		}
		if !found {
			return nil, false // projection needs an uncovered field
		}
	}
	return row, true
}

// decodePayloadField extracts the ci-th cached field from a payload.
func (ix *Index) decodePayloadField(payload []byte, ci int) (tuple.Value, bool) {
	f := ix.table.schema.Field(ix.cachedFields[ci])
	if payload[0]&(1<<ci) != 0 {
		return tuple.Value{Kind: f.Kind, Null: true}, true
	}
	off := ix.payloadOff[ci]
	v := tuple.Value{Kind: f.Kind}
	switch f.Kind {
	case tuple.KindInt64, tuple.KindTimestamp:
		v.Int = int64(binary.LittleEndian.Uint64(payload[off:]))
	case tuple.KindFloat64:
		v.Float = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
	case tuple.KindInt32:
		v.Int = int64(int32(binary.LittleEndian.Uint32(payload[off:])))
	case tuple.KindInt16:
		v.Int = int64(int16(binary.LittleEndian.Uint16(payload[off:])))
	case tuple.KindInt8:
		v.Int = int64(int8(payload[off]))
	case tuple.KindBool:
		if payload[off] != 0 {
			v.Int = 1
		}
	case tuple.KindChar:
		end := off + fixedValueWidth(f)
		b := payload[off:end]
		for len(b) > 0 && b[len(b)-1] == 0 {
			b = b[:len(b)-1]
		}
		v.Str = string(b)
	default:
		return tuple.Value{}, false
	}
	return v, true
}

func fieldFromKey(keyFields []int, keyVals []tuple.Value, pos int) (tuple.Value, bool) {
	for i, kpos := range keyFields {
		if kpos == pos {
			return keyVals[i], true
		}
	}
	return tuple.Value{}, false
}

func projectRow(row tuple.Row, projIdx []int) tuple.Row {
	out := make(tuple.Row, len(projIdx))
	for i, pos := range projIdx {
		out[i] = row[pos]
	}
	return out
}

// encodePayload serializes the cached fields of a row into the fixed
// payload layout: one null-bitmap byte, then each field's fixed bytes.
func (ix *Index) encodePayload(row tuple.Row) ([]byte, bool) {
	buf := make([]byte, ix.payloadWidth)
	off := 1
	for i, pos := range ix.cachedFields {
		v := row[pos]
		f := ix.table.schema.Field(pos)
		w := fixedValueWidth(f)
		if v.Null {
			buf[0] |= 1 << i
			off += w
			continue
		}
		switch f.Kind {
		case tuple.KindInt64, tuple.KindTimestamp:
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.Int))
		case tuple.KindFloat64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.Float))
		case tuple.KindInt32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v.Int)))
		case tuple.KindInt16:
			binary.LittleEndian.PutUint16(buf[off:], uint16(int16(v.Int)))
		case tuple.KindInt8:
			buf[off] = byte(int8(v.Int))
		case tuple.KindBool:
			if v.Int != 0 {
				buf[off] = 1
			}
		case tuple.KindChar:
			copy(buf[off:off+w], v.Str)
		default:
			return nil, false
		}
		off += w
	}
	return buf, true
}

// decodePayload inverts encodePayload.
func (ix *Index) decodePayload(payload []byte) ([]tuple.Value, bool) {
	if len(payload) != ix.payloadWidth {
		return nil, false
	}
	vals := make([]tuple.Value, len(ix.cachedFields))
	off := 1
	for i, pos := range ix.cachedFields {
		f := ix.table.schema.Field(pos)
		w := fixedValueWidth(f)
		if payload[0]&(1<<i) != 0 {
			vals[i] = tuple.Value{Kind: f.Kind, Null: true}
			off += w
			continue
		}
		v := tuple.Value{Kind: f.Kind}
		switch f.Kind {
		case tuple.KindInt64, tuple.KindTimestamp:
			v.Int = int64(binary.LittleEndian.Uint64(payload[off:]))
		case tuple.KindFloat64:
			v.Float = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		case tuple.KindInt32:
			v.Int = int64(int32(binary.LittleEndian.Uint32(payload[off:])))
		case tuple.KindInt16:
			v.Int = int64(int16(binary.LittleEndian.Uint16(payload[off:])))
		case tuple.KindInt8:
			v.Int = int64(int8(payload[off]))
		case tuple.KindBool:
			if payload[off] != 0 {
				v.Int = 1
			}
		case tuple.KindChar:
			end := off + w
			b := payload[off:end]
			for len(b) > 0 && b[len(b)-1] == 0 {
				b = b[:len(b)-1]
			}
			v.Str = string(b)
		default:
			return nil, false
		}
		vals[i] = v
		off += w
	}
	return vals, true
}

// prefixSuccessor returns the smallest byte string greater than every
// string with the given prefix, or nil if none exists (all 0xFF).
func prefixSuccessor(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
