// Package nblb ("no bits left behind") is a storage engine that
// implements the waste-reclaiming techniques of Wu, Curino and Madden,
// "No Bits Left Behind" (CIDR 2011):
//
//   - Index caching (§2.1): the free space of B+Tree leaf pages —
//     typically 32% of every page at the canonical 68% fill factor —
//     doubles as a volatile cache of hot tuples' field values, answering
//     point queries without touching the heap. Consistency comes from a
//     CSN scheme plus a predicate log; cache writes never add I/O.
//   - Access-based horizontal partitioning (§3.1): hot tuples are
//     clustered by delete+append or split into a hot partition whose
//     index fits in RAM.
//   - Vertical partitioning (§3.2): a cost-model advisor splits columns
//     by cache membership and update rate.
//   - Automated schema optimization (§4.1): declared types are hints; an
//     analyzer infers minimal encodings (down to single bits) and a
//     bit-packed codec realizes them.
//   - Semantic IDs (§4.2): partition bits embedded in identifiers
//     replace per-tuple routing tables; uniqueness-only IDs reduce to
//     the tuple's physical address.
//
// The package re-exports the engine API; subsystems live in internal/
// packages. See the examples/ directory for runnable walkthroughs and
// cmd/nblb-bench for the harness that regenerates the paper's figures.
package nblb

import (
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Options configure an engine instance.
type Options = core.Options

// Engine is an embedded storage engine.
type Engine = core.Engine

// Table is a heap-backed table with indexes.
type Table = core.Table

// Index is a B+Tree index, optionally carrying an index cache.
type Index = core.Index

// LookupResult reports how a point lookup was answered (index cache vs
// heap).
type LookupResult = core.LookupResult

// Cursor streams rows from a Table.Query or Index.Query: Next / Row /
// RID / Err / Close, plus All for range-over-func iteration. Rows are
// cursor scratch — Clone to retain.
type Cursor = core.Cursor

// QueryOption configures Query (key range, prefix, projection, limit,
// reverse, cache policy).
type QueryOption = core.QueryOption

// Batch accumulates inserts, updates, and deletes for Table.Apply —
// the write-side counterpart of Query. A zero Batch is ready to use;
// see Apply for the per-op-atomicity contract.
type Batch = core.Batch

// BatchOp is the public view of one queued Batch operation.
type BatchOp = core.BatchOp

// BatchOpKind tags a queued Batch operation.
type BatchOpKind = core.BatchOpKind

// Batch op kinds.
const (
	BatchInsert = core.BatchInsert
	BatchUpdate = core.BatchUpdate
	BatchDelete = core.BatchDelete
)

// ApplyOption configures Table.Apply (sync index maintenance, per-run
// heap fill factor, per-op result RIDs).
type ApplyOption = core.ApplyOption

// ApplyResult reports what one Table.Apply did (ops applied, first
// failed op, per-op RIDs when requested).
type ApplyResult = core.Result

// TableOption configures CreateTable (heap placement policy, fill
// factor, insert shards).
type TableOption = core.TableOption

// QueryStats counts how a cursor's rows were answered (cache vs heap).
type QueryStats = core.QueryStats

// CachePolicy selects index-cache-first or heap-only reads.
type CachePolicy = core.CachePolicy

// Cache policies for WithCachePolicy.
const (
	// CacheFirst answers coverable projections from the §2.1 index
	// cache, falling back to the heap per row (the default).
	CacheFirst = core.CacheFirst
	// HeapOnly bypasses the index cache and always reads the heap.
	HeapOnly = core.HeapOnly
)

// RID is a record's physical address.
type RID = storage.RID

// Schema, Field, Kind, Value and Row describe and hold table data.
type (
	Schema = tuple.Schema
	Field  = tuple.Field
	Kind   = tuple.Kind
	Value  = tuple.Value
	Row    = tuple.Row
)

// Field kinds (declared types — hints, per §4.1).
const (
	KindInt64     = tuple.KindInt64
	KindInt32     = tuple.KindInt32
	KindInt16     = tuple.KindInt16
	KindInt8      = tuple.KindInt8
	KindBool      = tuple.KindBool
	KindFloat64   = tuple.KindFloat64
	KindChar      = tuple.KindChar
	KindString    = tuple.KindString
	KindBytes     = tuple.KindBytes
	KindTimestamp = tuple.KindTimestamp
)

// SyncPolicy selects when an acked write reaches stable storage under
// the write-ahead log (see WithWAL).
type SyncPolicy = core.SyncPolicy

// Sync policies for WithSyncPolicy.
const (
	// SyncGroupCommit (the default) makes every write durable before it
	// is acked, coalescing concurrent committers into one shared fsync.
	SyncGroupCommit = core.SyncGroupCommit
	// SyncAlways fsyncs the log on every write, no coalescing.
	SyncAlways = core.SyncAlways
	// SyncNone never fsyncs on the commit path; the log reaches disk at
	// checkpoints. A crash may lose the tail of acked writes but never
	// corrupts the database.
	SyncNone = core.SyncNone
)

// EngineOption tweaks Options in Open's functional-option form.
type EngineOption = core.EngineOption

// Durability options (see Open).
var (
	// WithWAL enables the redo write-ahead log: every batch appends one
	// checksummed record before it is acked, fuzzy checkpoints bound the
	// log's growth, and Open replays any suffix a crash left behind.
	// Requires Options.Path; the log lives beside the database file.
	WithWAL = core.WithWAL
	// WithSyncPolicy selects commit durability (default SyncGroupCommit).
	WithSyncPolicy = core.WithSyncPolicy
	// WithCheckpointEvery sets the WAL growth budget between automatic
	// checkpoints (default 4 MiB).
	WithCheckpointEvery = core.WithCheckpointEvery
)

// Open creates an engine. A zero Options value yields an in-memory
// engine with 8 KiB pages and a 4096-page buffer pool.
//
// With WithWAL (or Options.WAL) the engine is durable: acked writes
// survive process crashes per the configured SyncPolicy, and Open
// doubles as recovery — it rebuilds the catalog from the last
// checkpoint's manifest and replays the log's suffix.
func Open(opts Options, extra ...EngineOption) (*Engine, error) {
	return core.NewEngine(opts, extra...)
}

// NewSchema builds a table schema.
func NewSchema(fields ...Field) (*Schema, error) { return tuple.NewSchema(fields...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(fields ...Field) *Schema { return tuple.MustSchema(fields...) }

// Value constructors, re-exported for convenience.
var (
	Int64         = tuple.Int64
	Int32         = tuple.Int32
	Int16         = tuple.Int16
	Int8          = tuple.Int8
	Bool          = tuple.Bool
	Float64       = tuple.Float64
	Char          = tuple.Char
	String        = tuple.String
	Bytes         = tuple.Bytes
	Timestamp     = tuple.Timestamp
	TimestampUnix = tuple.TimestampUnix
	NullValue     = tuple.Null
)

// Index options.
var (
	// WithCache enables the §2.1 index cache over the named fields.
	WithCache = core.WithCache
	// WithCacheBucket sets the swap-policy bucket size.
	WithCacheBucket = core.WithCacheBucket
	// WithPredLogLimit sets the predicate-log escalation threshold.
	WithPredLogLimit = core.WithPredLogLimit
	// WithCacheSeed fixes cache placement randomness.
	WithCacheSeed = core.WithCacheSeed
	// WithFillFactor sets the bulk-build fill factor (default 0.68).
	WithFillFactor = core.WithFillFactor
	// NonUnique permits duplicate keys.
	NonUnique = core.NonUnique
	// WithAppendOnlyHeap gives a table the append-at-tail placement
	// policy §3.1 critiques (and its clustering exploits). Forces a
	// single heap insert shard (one global tail).
	WithAppendOnlyHeap = core.WithAppendOnlyHeap
	// WithHeapFillFactor reserves 1−ff of each heap page for in-place
	// update headroom and the §2.2 join cache.
	WithHeapFillFactor = core.WithHeapFillFactor
	// WithHeapInsertShards sets a table's heap insert shard count —
	// the parallel-ingest knob (0 = automatic; 1 = the classic
	// single-mutex insert path; see Options.HeapInsertShards for the
	// engine-wide default).
	WithHeapInsertShards = core.WithHeapInsertShards
)

// Apply options (see Table.Apply).
var (
	// WithSyncIndexes applies each op's index maintenance in batch
	// order (per-op descents) instead of leaf-grouped sorted runs —
	// for batches with intra-batch dependencies between ops.
	WithSyncIndexes = core.WithSyncIndexes
	// WithBatchFillFactor caps how full this batch's heap inserts pack
	// any page, overriding the table's heap fill factor for the run.
	WithBatchFillFactor = core.WithBatchFillFactor
	// WithResultRIDs records each op's resulting RID in ApplyResult.
	WithResultRIDs = core.WithResultRIDs
)

// Query options (see Table.Query / Index.Query).
var (
	// WithIndex routes a Table.Query through the named index (key
	// order, key bounds).
	WithIndex = core.WithIndex
	// WithKeyRange bounds an index query to lo ≤ key < hi (nil =
	// unbounded; bounds may be key-field prefixes).
	WithKeyRange = core.WithKeyRange
	// WithPrefix bounds an index query to keys whose leading fields
	// equal the given values.
	WithPrefix = core.WithPrefix
	// WithProjection restricts rows to the named fields; projections
	// covered by key + cached fields are answered from the index cache.
	WithProjection = core.WithProjection
	// WithLimit stops the cursor after n rows.
	WithLimit = core.WithLimit
	// WithReverse iterates in descending key (or reverse heap) order.
	WithReverse = core.WithReverse
	// WithCachePolicy selects CacheFirst (default) or HeapOnly.
	WithCachePolicy = core.WithCachePolicy
	// WithFilter adds pushed-down filters (conjunction). On index
	// queries, key-field filters evaluate on decoded key bytes and
	// cached-field filters on §2.1 cache payloads — rejected rows never
	// touch the heap.
	WithFilter = core.WithFilter
	// WithParallel executes an index range scan as per-subtree segments
	// on n workers with vectorized row blocks (n ≤ 1 = serial).
	WithParallel = core.WithParallel
	// WithMergeMode picks MergeOrdered (loser-tree, global key order,
	// the default) or MergeUnordered (channel fan-in, max throughput)
	// for parallel scans.
	WithMergeMode = core.WithMergeMode
)

// Filter is one pushed-down field comparison for WithFilter. NULL never
// matches, including CmpNe.
type Filter = core.Filter

// CmpOp is a Filter's comparison operator.
type CmpOp = core.CmpOp

// Comparison operators for Filter.
const (
	CmpEq = core.CmpEq
	CmpNe = core.CmpNe
	CmpLt = core.CmpLt
	CmpLe = core.CmpLe
	CmpGt = core.CmpGt
	CmpGe = core.CmpGe
)

// MergeMode selects how a parallel query's segment streams combine.
type MergeMode = core.MergeMode

// Merge modes for WithMergeMode.
const (
	// MergeOrdered serves rows in global key order (loser-tree merge).
	MergeOrdered = core.MergeOrdered
	// MergeUnordered interleaves segment blocks as workers finish them.
	MergeUnordered = core.MergeUnordered
)

// AggOp is a simple aggregate operator for Table.Aggregate /
// Index.Aggregate.
type AggOp = core.AggOp

// Aggregate operators.
const (
	AggCount = core.AggCount
	AggSum   = core.AggSum
	AggMin   = core.AggMin
	AggMax   = core.AggMax
)

// AggSpec names one aggregate: an operator and the field it folds
// (empty for count(*)).
type AggSpec = core.AggSpec

// AggResult is an Aggregate call's outcome: one value per spec, the
// matched row count, and whether evaluation was pushed below the
// cursor onto key bytes and cached payloads.
type AggResult = core.AggResult

// Txn is a multi-op snapshot transaction: Engine.Begin pins a snapshot,
// Txn.Apply stages batches, Txn.Query opens snapshot-isolated cursors
// as-of the start timestamp, and Txn.Commit applies everything
// atomically under one commit timestamp (and one WAL record) after a
// first-committer-wins conflict check.
type Txn = core.Txn

// Transaction errors: ErrTxnConflict is Commit's first-committer-wins
// rejection (retry against a fresh snapshot); ErrTxnDone reports a Txn
// used after Commit or Abort.
var (
	ErrTxnConflict = core.ErrTxnConflict
	ErrTxnDone     = core.ErrTxnDone
)
