package nblb

import (
	"repro/internal/encoding"
	"repro/internal/partition"
	"repro/internal/semid"
	"repro/internal/tuple"
	"repro/internal/vertical"
)

// --- §3.1 horizontal partitioning ---------------------------------------

// AccessTracker observes per-tuple access frequency to find hot tuples.
type AccessTracker = partition.AccessTracker

// NewAccessTracker returns an empty tracker.
func NewAccessTracker() *AccessTracker { return partition.NewAccessTracker() }

// Forwarding maps relocated tuples' old RIDs to their new homes.
type Forwarding = partition.Forwarding

// NewForwarding returns an empty forwarding table.
func NewForwarding() *Forwarding { return partition.NewForwarding() }

// HotCold is a table split into hot and cold partitions with per-
// partition lookup indexes. Batched mutations route per partition via
// ApplyHot/ApplyCold, which record forwarding entries for relocated
// updates automatically.
type HotCold = partition.HotCold

// HotColdCursor is a merged key-ordered cursor over both partitions
// (from HotCold.Query); Hot reports which partition served each row.
type HotColdCursor = partition.Cursor

// HotColdConfig configures NewHotCold.
type HotColdConfig = partition.Config

// NewHotCold creates an empty hot/cold partition pair.
func NewHotCold(cfg HotColdConfig) (*HotCold, error) { return partition.New(cfg) }

// Cluster relocates hot tuples to the end of the table (delete +
// append), recording moves in fwd when non-nil.
func Cluster(t *Table, hot []RID, fwd *Forwarding) (map[RID]RID, error) {
	return partition.Cluster(t, hot, fwd)
}

// ClusterFraction clusters only the leading fraction of the hot list.
func ClusterFraction(t *Table, hot []RID, frac float64, fwd *Forwarding) (map[RID]RID, error) {
	return partition.ClusterFraction(t, hot, frac, fwd)
}

// --- §3.2 vertical partitioning ------------------------------------------

// FieldStats profiles one column's workload for the vertical advisor.
type FieldStats = vertical.FieldStats

// VerticalSplit is a proposed column grouping with model costs.
type VerticalSplit = vertical.Split

// VerticalCostModel weighs per-group seeks against bytes transferred.
type VerticalCostModel = vertical.CostModel

// AdviseVertical proposes a vertical split for the workload profile.
func AdviseVertical(schema *Schema, stats []FieldStats, m VerticalCostModel) (VerticalSplit, error) {
	return vertical.Advise(schema, stats, m)
}

// DefaultVerticalCostModel returns the standard seek:byte trade-off.
func DefaultVerticalCostModel() VerticalCostModel { return vertical.DefaultCostModel() }

// VerticalTable stores a logical table as multiple column-group tables.
type VerticalTable = vertical.VerticalTable

// VerticalCursor streams logical rows in pk order from a
// VerticalTable.Query, merging column groups per row.
type VerticalCursor = vertical.Cursor

// NewVerticalTable materializes a split on the engine. opts apply to
// every group table (heap insert shards, fill factor, …). Bulk ingest
// should use VerticalTable.InsertBatch, which fans one logical batch
// out as one leaf-grouped batch per group.
func NewVerticalTable(e *Engine, name string, schema *Schema, pkField string, groups [][]string, opts ...TableOption) (*VerticalTable, error) {
	return vertical.NewVerticalTable(e, name, schema, pkField, groups, opts...)
}

// --- §4.1 automated schema optimization -----------------------------------

// ColumnProfile accumulates per-column value statistics.
type ColumnProfile = encoding.ColumnProfile

// Recommendation is the advisor's minimal-encoding verdict for a column.
type Recommendation = encoding.Recommendation

// TableReport aggregates per-column waste findings.
type TableReport = encoding.TableReport

// PackedCodec encodes rows at their recommended bit widths.
type PackedCodec = encoding.PackedCodec

// AnalyzeTable profiles every row of a table and reports the encoding
// waste its declared types hide — §4.1's automated analysis. The
// profiler pulls rows straight off a streaming cursor, so the analysis
// runs in O(1) memory instead of cloning the table into a slice.
func AnalyzeTable(t *Table) (TableReport, error) {
	cur, err := t.Query()
	if err != nil {
		return TableReport{}, err
	}
	defer cur.Close()
	report := encoding.AnalyzeRows(t.Name(), t.Schema(), func() (tuple.Row, bool) {
		if !cur.Next() {
			return nil, false
		}
		return cur.Row(), true
	})
	if err := cur.Err(); err != nil {
		return TableReport{}, err
	}
	return report, nil
}

// NewPackedCodec builds a bit-packed row codec from recommendations.
func NewPackedCodec(schema *Schema, recs []Recommendation) (*PackedCodec, error) {
	return encoding.NewPackedCodec(schema, recs)
}

// --- §4.2 semantic IDs -----------------------------------------------------

// IDLayout divides an ID's bits between partition and sequence.
type IDLayout = semid.Layout

// NewIDLayout creates a layout with the given number of partition bits.
func NewIDLayout(partitionBits int) (IDLayout, error) { return semid.NewLayout(partitionBits) }

// Router resolves tuple IDs to partitions.
type Router = semid.Router

// NewTableRouter returns the per-tuple routing-table baseline.
func NewTableRouter() *semid.TableRouter { return semid.NewTableRouter() }

// NewEmbeddedRouter routes by decoding partition bits from the ID.
func NewEmbeddedRouter(l IDLayout) *semid.EmbeddedRouter { return semid.NewEmbeddedRouter(l) }

// FindReducibleIDs reports ID fields a proxy can replace (§4.2).
func FindReducibleIDs(schema *Schema, uniqueOnly []string, derived map[string]string) ([]semid.ReductionCheck, error) {
	return semid.FindReducible(schema, uniqueOnly, derived)
}
